"""Rank-failure drills behind ``python -m repro resilience``.

Runs a forward+inverse 3-D FFT with a process fault injected
mid-reshape — a ``kill`` (fail-stop crash) or a ``hang`` (wedged,
beacon-silent rank) — and exercises the whole recovery story from
DESIGN.md §10/§14: heartbeat detection, liveness agreement, shrink to
the survivors, and checkpointed restart.  ``--runtime thread`` (the
default) injects into rank threads; ``--runtime proc`` forks one OS
process per rank and the kill drill delivers a *real* ``SIGKILL`` to
the victim's pid.  Artefacts:

* ``failure_report_<kind>.json`` — the structured
  :class:`~repro.resilience.monitor.FailureReport` (who died, how it was
  classified, and the detect → agree → shrink → restart timeline);
* ``trace_resilience_<kind>.json`` — Chrome ``trace_event`` stream with
  the recovery-phase spans alongside the FFT's compute/exchange spans;
* a text summary (stdout) per drill.

The drill fails (non-zero exit) unless the shrunk run completes, the
roundtrip error stays within the codec tolerance, and the report's
recovery-phase sequence is complete.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.resilience.monitor import FailureReport

__all__ = ["run_resilience_cli", "run_drill", "DRILL_KINDS"]

DRILL_KINDS = ("kill", "hang")


def run_drill(
    kind: str,
    *,
    nranks: int = 4,
    n: int = 16,
    e_tol: float = 1e-6,
    victim: int = 1,
    after: int = 12,
    seed: int = 0,
    timeout: float = 15.0,
    suspect_after: float = 0.5,
    runtime: str = "thread",
) -> tuple[bool, float, FailureReport | None, str]:
    """One fault drill; returns ``(ok, rel_error, report, summary_text)``.

    ``after`` counts the victim's transport operations before the fault
    fires, placing the death mid-reshape rather than at the first send.
    ``runtime`` picks the execution substrate: with ``"proc"`` the
    victim is a forked OS process and a kill drill SIGKILLs its real
    pid.
    """
    from repro.faults import FaultPlan, FaultRule
    from repro.resilience.checkpoint import ResilientFft3d
    from repro.runtime import RUNTIMES, make_world

    if kind not in DRILL_KINDS:
        raise ValueError(f"unknown drill kind {kind!r}; expected one of {DRILL_KINDS}")
    if runtime not in RUNTIMES:
        raise ValueError(f"unknown runtime {runtime!r}; expected one of {RUNTIMES}")
    if not 0 <= victim < nranks:
        raise ValueError(f"victim rank {victim} out of range [0, {nranks})")

    shape = (n, n, n)
    rng = np.random.default_rng(2024 + seed)
    data = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
        np.complex128
    )
    plan = FaultPlan(
        seed=seed, rules=[FaultRule(kind=kind, rank=victim, after=after)]
    )
    fft = ResilientFft3d(shape, nranks, e_tol=e_tol)

    def kernel(comm):
        local = fft.plan.scatter(data)[comm.rank]
        fwd = fft.run_spmd(comm, local)
        back = fft.run_spmd(fwd.comm, fwd.block, inverse=True)
        blocks = back.comm.allgather(back.block)
        if back.comm.rank != 0:
            return None
        report = back.report or fwd.report
        return back.plan.gather(blocks), (fwd.recovered or back.recovered), report

    world = make_world(
        runtime, nranks, timeout=timeout, faults=plan, suspect_after=suspect_after
    )
    results = [r for r in world.run(kernel) if r is not None]
    if not results:
        return False, float("inf"), None, f"{kind}: no surviving rank returned a result"
    full, recovered, report = results[0]
    err = float(np.max(np.abs(full - data)) / np.max(np.abs(data)))
    tol = fft.plan.guaranteed_tolerance
    seq_ok = report is not None and report.phase_sequence_complete()
    ok = recovered and err <= tol and seq_ok
    lines = [
        f"--- drill: {kind} rank {victim} after {after} ops "
        f"({nranks} {runtime} ranks, {n}^3 grid, e_tol={e_tol:g}) ---",
        f"recovered:          {recovered}",
        f"roundtrip rel err:  {err:.3e} (tolerance {tol:.3e})",
        f"phase sequence ok:  {seq_ok}",
    ]
    if report is not None:
        lines.append(report.summary())
    return ok, err, report, "\n".join(lines)


def run_resilience_cli(
    *,
    kind: str = "both",
    nranks: int = 4,
    n: int = 16,
    e_tol: float = 1e-6,
    victim: int = 1,
    after: int = 12,
    seed: int = 0,
    timeout: float = 15.0,
    suspect_after: float = 0.5,
    runtime: str = "thread",
    out: str | None = ".",
) -> int:
    """Run the requested drills, write artefacts, return the exit code."""
    from repro.trace.core import Tracer, install, uninstall
    from repro.trace.export import write_chrome_trace

    from repro.telemetry.blackbox import emit_blackbox, write_blackbox
    from repro.telemetry.recorder import reset as reset_flight

    kinds = DRILL_KINDS if kind == "both" else (kind,)
    all_ok = True
    for k in kinds:
        tracer = Tracer()
        install(tracer)
        reset_flight()  # one flight-recorder ring per drill
        try:
            ok, _err, report, text = run_drill(
                k,
                nranks=nranks,
                n=n,
                e_tol=e_tol,
                victim=victim,
                after=after,
                seed=seed,
                timeout=timeout,
                suspect_after=suspect_after,
                runtime=runtime,
            )
        finally:
            uninstall()
        print(text)
        if out is not None:
            os.makedirs(out, exist_ok=True)
            trace_path = os.path.join(out, f"trace_resilience_{k}.json")
            write_chrome_trace(tracer, trace_path)
            print(f"chrome trace:       {trace_path}")
            if report is not None:
                report_path = os.path.join(out, f"failure_report_{k}.json")
                with open(report_path, "w", encoding="utf-8") as fh:
                    json.dump(report.to_json(), fh, indent=2, sort_keys=True)
                print(f"failure report:     {report_path}")
            # Black-box dump from the always-on flight recorder: the
            # detect/agree/shrink/restart timeline with no Tracer needed.
            dump = emit_blackbox(f"resilience drill: {k}", failure_report=report)
            bb_path = os.path.join(out, f"blackbox_{k}.json")
            write_blackbox(dump, bb_path)
            print(f"black-box dump:     {bb_path}")
        print("result:             " + ("PASS" if ok else "FAIL"))
        print()
        all_ok = all_ok and ok
    return 0 if all_ok else 1
