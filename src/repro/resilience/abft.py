"""Algorithm-based fault tolerance (ABFT) checksums for reshapes.

A reshape is a *permutation*: every grid cell leaves exactly one rank
and lands on exactly one rank, bit-identical when the exchange is exact
and within the codec's ``e_tol`` when it is lossy.  That makes linear
checksums a natural invariant — the sum of the elements of each
(src → dst) message is preserved by pack → compress → exchange →
decompress → unpack, up to compression error.

Protocol (driven by :mod:`repro.resilience.checkpoint`):

1. before the exchange every rank computes :func:`reshape_checksums`
   over its *outgoing* messages from the pre-reshape block;
2. the per-rank checksum tables are allgathered (tiny control-plane
   traffic — two scalars per message);
3. after the exchange every rank recomputes the sums over the regions
   it *received* (same cells, new layout) and calls
   :func:`verify_checksums`, which raises :class:`~repro.errors.AbftError`
   on any disagreement beyond the tolerance.

Unlike the wire CRC (which protects one put's bytes in flight), these
checksums travel out-of-band and survive a restart: a resumed rank can
validate a checkpointed block against sums computed before the failure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.errors import AbftError

__all__ = ["AbftChecksums", "reshape_checksums", "verify_checksums"]

#: Floor on the comparison tolerance, in units of machine epsilon, to
#: absorb benign non-associativity of the two summation orders.
_EPS_FACTOR = 64.0


@dataclass
class AbftChecksums:
    """Per-message linear checksums of one rank's side of a reshape.

    ``entries`` maps ``(src, dst)`` to ``(sum, abs_sum)`` where ``sum``
    is the (complex) element sum of the message and ``abs_sum`` the sum
    of magnitudes — the scale against which a deviation is judged.
    """

    rank: int
    stage: int
    direction: str  # "send" | "recv"
    entries: dict[tuple[int, int], tuple[complex, float]] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "rank": self.rank,
            "stage": self.stage,
            "direction": self.direction,
            "entries": {
                f"{s}->{d}": {"sum": [val.real, val.imag], "abs_sum": mag}
                for (s, d), (val, mag) in sorted(self.entries.items())
            },
        }


def reshape_checksums(
    plan, rank: int, block: np.ndarray, *, stage: int = 0, direction: str = "send"
) -> AbftChecksums:
    """Checksum one rank's messages of a reshape.

    ``direction="send"`` sums the chunks ``rank`` is about to pack from
    its pre-reshape ``block`` (one entry per ``plan.pairs[rank]``);
    ``direction="recv"`` sums the regions of the post-reshape ``block``
    that each source delivered (one entry per ``plan.incoming[rank]``).
    Both sides sum the *same cells*, so the entries are comparable.
    """
    if direction not in ("send", "recv"):
        raise AbftError(f"direction must be 'send' or 'recv', got {direction!r}")
    out = AbftChecksums(rank=rank, stage=stage, direction=direction)
    if direction == "send":
        for d, box in plan.pairs[rank]:
            chunk = plan.pack(rank, block, d, box)
            out.entries[(rank, d)] = (complex(chunk.sum()), float(np.abs(chunk).sum()))
    else:
        dbox = plan.dst.box_of(rank)
        for s, box in plan.incoming[rank]:
            sl = box.slices_within(dbox)
            chunk = block[..., sl[0], sl[1], sl[2]]
            out.entries[(s, rank)] = (complex(chunk.sum()), float(np.abs(chunk).sum()))
    return out


def verify_checksums(
    sent: Mapping[tuple[int, int], tuple[complex, float]] | AbftChecksums,
    received: AbftChecksums,
    e_tol: float | None = None,
    *,
    eps: float | None = None,
) -> int:
    """Compare receiver-side sums against the senders' (raises on mismatch).

    ``sent`` is either one sender's :class:`AbftChecksums` or a merged
    ``(src, dst) -> (sum, abs_sum)`` mapping covering all senders.  The
    per-message tolerance is ``max(e_tol, 64·eps) * abs_sum`` — a lossy
    codec may perturb each element by ``e_tol`` relative to its scale,
    so the sum may drift by at most that fraction of the magnitude sum.
    A missing sender entry for a received message is itself an error
    (the cell's provenance cannot be validated).

    Returns the number of messages checked.
    """
    sent_entries = sent.entries if isinstance(sent, AbftChecksums) else sent
    if eps is None:
        eps = float(np.finfo(np.float64).eps)
    rel = max(float(e_tol or 0.0), _EPS_FACTOR * eps)
    checked = 0
    problems: list[str] = []
    for key, (got_sum, got_mag) in sorted(received.entries.items()):
        ref = sent_entries.get(key)
        if ref is None:
            problems.append(f"message {key[0]}->{key[1]}: no sender checksum")
            continue
        ref_sum, ref_mag = ref
        scale = max(ref_mag, got_mag)
        tol = rel * scale + _EPS_FACTOR * eps  # absolute floor near zero
        err = abs(got_sum - ref_sum)
        if err > tol:
            problems.append(
                f"message {key[0]}->{key[1]}: checksum off by {err:.3e} "
                f"(tolerance {tol:.3e}, scale {scale:.3e})"
            )
        checked += 1
    if problems:
        raise AbftError(
            f"rank {received.rank} stage {received.stage}: "
            f"{len(problems)} ABFT checksum violation(s): " + "; ".join(problems)
        )
    return checked
