"""Fault-aware agreement (the ULFM ``MPIX_Comm_agree`` analogue).

After a failure is detected, survivors must reach a *consistent* view
of who is alive before they can shrink: if rank 0 thinks {0, 2, 3}
survived while rank 2 thinks {0, 1, 2, 3} did, the shrunk communicators
disagree on size and the ring permutation, and recovery itself
deadlocks.

:class:`AgreementSpace` runs rounds of a simple crash-tolerant
agreement over liveness *bitmaps* (bit ``r`` set = rank ``r`` believed
alive by the contributor):

* every participating rank contributes its local bitmap for the round;
* a round completes once every rank **not declared dead** by the
  failure registry has contributed — so the protocol terminates even
  while ranks are dying, as the watchdog shrinks the expected set;
* the decided value is the bitwise **AND** of the contributions, with
  the registry's dead ranks masked out — any rank suspected by anyone
  is excluded (pessimistic, like ULFM: false suspicion costs a healthy
  rank, disagreement costs the whole job);
* the first rank to observe completion freezes the decision; everyone
  else (including late contributors that were wrongly suspected)
  returns the *same* frozen value.  Decisions are linearizable per
  round.

Waiters poll in quanta, invoking a caller-supplied callback outside the
lock each quantum — the callback beacons and runs the watchdog, so a
rank dying *mid-agreement* is still detected and removed from the
expected set.  Agreement must make progress on a revoked world (it is
the recovery path), so the callback used here must not raise on revoke.
"""

from __future__ import annotations

import threading
import time

from repro.errors import CommunicatorError

__all__ = ["AgreementSpace", "bitmap_ranks", "ranks_bitmap"]


def bitmap_ranks(bitmap: int, nranks: int) -> tuple[int, ...]:
    """Decode a liveness bitmap into a sorted tuple of rank ids."""
    return tuple(r for r in range(nranks) if bitmap >> r & 1)


def ranks_bitmap(ranks) -> int:
    """Encode an iterable of rank ids as a liveness bitmap."""
    out = 0
    for r in ranks:
        out |= 1 << int(r)
    return out


class AgreementSpace:
    """Shared-memory arena for rounds of fault-aware agreement."""

    def __init__(self, nranks: int, *, quantum: float = 0.02) -> None:
        self.nranks = int(nranks)
        self.quantum = float(quantum)
        self._cond = threading.Condition()
        self._round = [0] * self.nranks  # per-rank next round number
        self._contrib: dict[int, dict[int, int]] = {}
        self._decided: dict[int, int] = {}

    def next_round(self, rank: int) -> int:
        """Allocate ``rank``'s next agreement round number."""
        with self._cond:
            round_no = self._round[rank]
            self._round[rank] = round_no + 1
            return round_no

    def _try_decide_locked(self, round_no: int, dead: frozenset[int]) -> int | None:
        if round_no in self._decided:
            return self._decided[round_no]
        contrib = self._contrib.get(round_no, {})
        expected = [r for r in range(self.nranks) if r not in dead]
        if not expected or any(r not in contrib for r in expected):
            return None
        value = ~0
        for r in expected:
            value &= contrib[r]
        for r in dead:
            value &= ~(1 << r)
        value &= (1 << self.nranks) - 1
        self._decided[round_no] = value
        return value

    def agree(
        self,
        rank: int,
        round_no: int,
        bitmap: int,
        *,
        dead_ranks,
        poll=None,
        timeout: float | None = None,
    ) -> int:
        """Contribute ``bitmap`` to ``round_no`` and block for the decision.

        ``dead_ranks`` is a zero-argument callable returning the failure
        registry's current dead set (a frozenset of ranks) — re-read
        every quantum so deaths during the agreement shrink the expected
        contributor set.  ``poll`` runs outside the lock each quantum
        (beacon + watchdog scan); it must not raise on revoke.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            self._contrib.setdefault(round_no, {})[rank] = int(bitmap)
            self._cond.notify_all()
        while True:
            dead = frozenset(dead_ranks())
            with self._cond:
                value = self._try_decide_locked(round_no, dead)
                if value is not None:
                    self._cond.notify_all()
                    return value
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    contrib = sorted(self._contrib.get(round_no, {}))
                    missing = [
                        r for r in range(self.nranks) if r not in dead and r not in contrib
                    ]
                    raise CommunicatorError(
                        f"rank {rank}: agreement round {round_no} timed out after "
                        f"{timeout}s (have {contrib}, waiting on {missing}, dead {sorted(dead)})"
                    )
                wait_t = self.quantum if deadline is None else min(self.quantum, deadline - now)
                self._cond.wait(timeout=wait_t)
            # Outside the lock: beacon liveness, run the watchdog so a
            # contributor dying mid-round gets declared and removed from
            # the expected set on the next iteration.
            if poll is not None:
                poll()
