"""Rank-failure tolerance (``repro.resilience``).

The fault layer (``repro.faults``) recovers *messages* — a dropped
fragment, a flipped bit, a codec hiccup.  This package recovers from a
whole rank dying or wedging mid-FFT, the ULFM-style story:

* :mod:`~repro.resilience.monitor` — heartbeat watchdog: per-rank
  liveness beacons, deadline-tracked blocking ops, straggler / dead /
  deadlock classification, structured :class:`~repro.resilience.monitor.FailureReport`;
* :mod:`~repro.resilience.agreement` — fault-aware agreement on
  liveness bitmaps (the ``MPIX_Comm_agree`` analogue) so survivors
  shrink to the *same* communicator;
* :mod:`~repro.resilience.abft` — algorithm-based per-reshape checksums
  validated against the codec error budget;
* :mod:`~repro.resilience.checkpoint` — CRC-framed pencil checkpoints in
  a world-shared store ("burst buffer") plus the shrink-and-restart
  driver for :class:`~repro.fft.plan.Fft3d`.

Import discipline: the thread runtime imports :mod:`monitor` and
:mod:`agreement`; :mod:`checkpoint` imports the runtime and the FFT
layer back, so it is exposed lazily to keep the package cycle-free.
"""

from repro.resilience.abft import AbftChecksums, reshape_checksums, verify_checksums
from repro.resilience.agreement import AgreementSpace, bitmap_ranks, ranks_bitmap
from repro.resilience.monitor import (
    STALL_CLASSIFICATIONS,
    FailureReport,
    HeartbeatMonitor,
    PhaseSpan,
    RankFailure,
    RevocableBarrier,
)

__all__ = [
    "STALL_CLASSIFICATIONS",
    "AbftChecksums",
    "AgreementSpace",
    "CheckpointStore",
    "FailureReport",
    "HeartbeatMonitor",
    "PhaseSpan",
    "RankFailure",
    "ResilientFft3d",
    "RevocableBarrier",
    "ShmCheckpointStore",
    "SpmdResult",
    "bitmap_ranks",
    "ranks_bitmap",
    "reshape_checksums",
    "verify_checksums",
]

_LAZY = {
    "CheckpointStore": "repro.resilience.checkpoint",
    "ResilientFft3d": "repro.resilience.checkpoint",
    "ShmCheckpointStore": "repro.resilience.checkpoint",
    "SpmdResult": "repro.resilience.checkpoint",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
