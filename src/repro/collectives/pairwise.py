"""Classical two-sided ring ("pairwise") all-to-all (Section V).

For ``p`` ranks the exchange completes in ``p`` steps (including the
self-send).  At step ``j`` rank ``i`` sends to its ``j``-th target and
receives from the unique rank whose ``j``-th target is ``i`` — with the
plain ring that is ``(i - j) % p``; with the node-aware permutation it
is the algebraic inverse of
:func:`repro.machine.topology.node_aware_permutation`.  "At each step,
each process sends and receives one message of same size to and from
different processes ... ensuring a constant, bi-directional traffic."
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.conformance import hooks
from repro.errors import CommunicatorError
from repro.machine.topology import Topology
from repro.runtime.base import Comm
from repro.trace import incr as trace_incr
from repro.trace import span as trace_span
from repro.utils.arrays import no_alias_copy

__all__ = ["pairwise_alltoallv", "ring_peers"]

_TAG = -201


def ring_peers(rank: int, step: int, nranks: int, topo: Topology | None) -> tuple[int, int]:
    """(destination, source) of ``rank`` at ``step`` of the ring.

    With a topology, uses the node-aware permutation: the destination is
    ``((node + step // g) % n) * g + (local + step) % g`` and the source
    is its inverse; without one — or with a non-uniform (shrunk) one,
    where the closed form no longer maps ranks to nodes — the plain
    ``(rank ± step) % p`` ring.
    """
    if topo is None or not getattr(topo, "uniform", True):
        return (rank + step) % nranks, (rank - step) % nranks
    g, n = topo.ranks_per_node, topo.nnodes
    node, local = rank // g, rank % g
    dest = ((node + step // g) % n) * g + (local + step) % g
    src = ((node - step // g) % n) * g + (local - step) % g
    return dest, src


def pairwise_alltoallv(
    comm: Comm,
    send: Sequence[np.ndarray | None],
    *,
    topology: Topology | None = None,
) -> list[np.ndarray]:
    """Two-sided ring all-to-all: ``send[d]`` (bytes/any dtype) to rank ``d``.

    Parameters
    ----------
    comm:
        Runtime communicator.
    send:
        One array (or ``None`` ≡ empty) per destination rank.
    topology:
        When given, the node-aware permutation orders the ring so each
        node pair saturates its NIC exclusively at every step.

    Returns
    -------
    list[np.ndarray]
        ``recv[s]`` = the chunk sent by rank ``s`` (uint8 when the
        sender passed ``None``).
    """
    p = comm.size
    if len(send) != p:
        raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
    if topology is not None and topology.nranks != p:
        raise CommunicatorError("topology size does not match communicator size")
    empty = np.zeros(0, dtype=np.uint8)
    recv: list[np.ndarray] = [empty] * p

    # Step 0 is the local (self) exchange: exactly one copy, and never
    # an alias of the caller's send buffer (ascontiguousarray alone
    # returns the input itself when it is already contiguous).
    mine = send[comm.rank]
    recv[comm.rank] = no_alias_copy(mine)
    if mine is not None:
        trace_incr("messages", 1, rank=comm.rank)
        trace_incr("logical_bytes", int(recv[comm.rank].nbytes), rank=comm.rank)
        trace_incr("wire_bytes", int(recv[comm.rank].nbytes), rank=comm.rank)

    for step in range(1, p):
        dest, src = ring_peers(comm.rank, step, p, topology)
        chunk = send[dest]
        out = empty if chunk is None else np.ascontiguousarray(chunk)
        out = hooks.mutate("pairwise.chunk", out, rank=comm.rank, dest=dest, step=step)
        # isend-then-recv: eager buffered send cannot deadlock, and the
        # pair (dest, src) differs per rank so messages pair up 1:1.
        with trace_span("sendrecv", rank=comm.rank, peer=dest, bytes=int(out.nbytes)):
            req = comm.isend(out, dest, tag=_TAG - step)
            recv[src] = comm.recv(src, tag=_TAG - step)
            req.wait()
        if chunk is not None:
            trace_incr("messages", 1, rank=comm.rank)
            trace_incr("logical_bytes", int(out.nbytes), rank=comm.rank)
            trace_incr("wire_bytes", int(out.nbytes), rank=comm.rank)
    return recv
