"""All-to-all algorithms (Section V): pairwise ring, OSC ring, compressed OSC.

Three interchangeable implementations of the generalized all-to-all
(``MPI_Alltoallv``) run on the :mod:`repro.runtime` API:

* :func:`~repro.collectives.pairwise.pairwise_alltoallv` — the classical
  two-sided ring ("pairwise") algorithm: ``p`` steps, each rank sending
  and receiving one message per step, optionally with the node-aware
  permutation of Section V;
* :class:`~repro.collectives.osc.OscAlltoallv` — Algorithm 3: one-sided
  ring on an RMA window, with window caching across repeated exchanges;
* :class:`~repro.collectives.compressed.CompressedOscAlltoallv` —
  Section V-B: the OSC ring with per-destination compression staged
  through internal buffers (the send buffer stays const) and chunked
  puts mirroring the GPU-stream pipeline.
"""

from repro.collectives.compressed import CompressedOscAlltoallv, ExchangeStats
from repro.collectives.osc import OscAlltoallv, osc_alltoallv
from repro.collectives.pairwise import pairwise_alltoallv
from repro.collectives.twolevel import TwoLevelCompressedAlltoallv
from repro.collectives.variants import bruck_alltoall, linear_alltoallv
from repro.collectives.wire import WIRE_MAGIC, WIRE_VERSION, decode_wire, encode_wire

__all__ = [
    "pairwise_alltoallv",
    "OscAlltoallv",
    "osc_alltoallv",
    "CompressedOscAlltoallv",
    "TwoLevelCompressedAlltoallv",
    "ExchangeStats",
    "linear_alltoallv",
    "bruck_alltoall",
    "encode_wire",
    "decode_wire",
    "WIRE_MAGIC",
    "WIRE_VERSION",
]
