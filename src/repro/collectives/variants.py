"""Additional all-to-all algorithms: linear (isend-storm) and Bruck.

The paper's Section V-A remarks that posting everything up front "will
insert, almost in same time, a storm of messages in the network" — the
*linear* algorithm here is exactly that baseline (it is also what
Open MPI's basic coll module does).  The *Bruck* algorithm is the
classic log-p alternative for small messages: ceil(log2 p) rounds, each
shipping half the buffer, trading volume (each byte moves ~log2(p)/2
times) for latency (log p instead of p message start-ups).  Both are
verified against the reference exchange, and both are modelled in
:mod:`repro.netsim.alltoall_model` so the latency/bandwidth crossover
can be studied (the FP16 curve of Fig. 4 lives exactly at that
crossover).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.conformance import hooks
from repro.errors import CommunicatorError
from repro.runtime.base import Comm
from repro.utils.arrays import no_alias_copy

__all__ = ["linear_alltoallv", "bruck_alltoall"]

_TAG_LINEAR = -301
_TAG_BRUCK = -302


def linear_alltoallv(
    comm: Comm, send: Sequence[np.ndarray | None]
) -> list[np.ndarray]:
    """Post every isend/irecv at once, then wait (the message storm).

    Semantically identical to the ring; the difference is *scheduling*,
    which only a network feels — see the congestion model.
    """
    p = comm.size
    if len(send) != p:
        raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
    empty = np.zeros(0, dtype=np.uint8)
    recv_reqs = {
        src: comm.irecv(src, tag=_TAG_LINEAR) for src in range(p) if src != comm.rank
    }
    send_reqs = []
    for dst in range(p):
        if dst == comm.rank:
            continue
        chunk = send[dst]
        send_reqs.append(
            comm.isend(empty if chunk is None else np.ascontiguousarray(chunk), dst, tag=_TAG_LINEAR)
        )
    out: list[np.ndarray] = [empty] * p
    out[comm.rank] = no_alias_copy(send[comm.rank])
    for src, req in recv_reqs.items():
        out[src] = req.wait()
    for req in send_reqs:
        req.wait()
    return out


def bruck_alltoall(comm: Comm, send: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Bruck's log-p all-to-all for equal-sized messages.

    Phase 1: local rotation so block ``i`` holds data for rank
    ``(rank + i) % p``.  Phase 2: for each bit ``k`` of the rank
    distance, ship every block whose index has bit ``k`` set to rank
    ``rank + 2**k`` (blocks coalesce into one message per round —
    ``ceil(log2 p)`` start-ups total).  Phase 3: inverse rotation.

    All messages must have identical shape/dtype (the classical Bruck
    restriction); use the ring/linear variants for the general vector
    case.
    """
    p = comm.size
    if len(send) != p:
        raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
    blocks = [np.ascontiguousarray(c) for c in send]
    shape0, dtype0 = blocks[0].shape, blocks[0].dtype
    if any(b.shape != shape0 or b.dtype != dtype0 for b in blocks):
        raise CommunicatorError("bruck_alltoall requires equal-sized blocks")

    # Phase 1: upward rotation by rank.
    work = [blocks[(comm.rank + i) % p].copy() for i in range(p)]

    # Phase 2: log rounds.
    k = 0
    while (1 << k) < p:
        step = 1 << k
        dst = (comm.rank + step) % p
        src = (comm.rank - step) % p
        idx = hooks.mutate(
            "bruck.block_index", [i for i in range(p) if i & step], rank=comm.rank, step=step
        )
        packed = np.stack([work[i] for i in idx]) if idx else np.zeros((0,) + shape0, dtype0)
        req = comm.isend(packed, dst, tag=_TAG_BRUCK - k)
        incoming = comm.recv(src, tag=_TAG_BRUCK - k)
        req.wait()
        incoming = incoming.reshape((len(idx),) + shape0)
        for j, i in enumerate(idx):
            work[i] = incoming[j]
        k += 1

    # Phase 3: final rotation + reversal puts block from rank s at [s].
    out: list[np.ndarray] = [None] * p  # type: ignore[list-item]
    for i in range(p):
        out[(comm.rank - i) % p] = work[i]
    return out
