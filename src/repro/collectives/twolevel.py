"""Node-aware two-level compressed all-to-all (gather → exchange → scatter).

The flat compressed ring puts one message per *rank* pair on the wire:
``p * (p - 1)`` inter-rank messages, of which all but the intra-node
ones cross a NIC.  On a hierarchical machine the NIC — not the GPU — is
the scarce resource, and gZCCL-style collectives restructure the
exchange around it:

1. **intra-node gather** — every rank ships its (already compressed)
   blocks bound for remote node ``m`` to a designated *send leader* on
   its own node (NVLink-class links, cheap);
2. **inter-node exchange** — the send leader concatenates its node's
   blocks and sends **one** aggregate message to a *recv leader* on node
   ``m`` (exactly one NIC message per ordered node pair per round);
3. **intra-node scatter** — the recv leader slices the aggregate along
   the size matrix agreed up front and forwards each block to its final
   rank on the node.

Blocks bound for the sender's own node skip all three stages and go
directly (stage 0).  Leader duty is spread across the node's ranks —
the leader for peer node ``m`` is the local rank ``m % g`` — so no
single rank serialises the node's NIC traffic.

The payload bytes on the wire are *identical* to the flat exchange
(same codec, same per-destination frames, same CRC-checked wire
format), so the class reuses the whole encode/decode/recovery machinery
of :class:`~repro.collectives.compressed.CompressedOscAlltoallv` and is
validated byte-for-byte against it by the conformance oracles.  No
routing headers are needed anywhere: every rank knows the full
``p × p`` size matrix from the counts allgather, so gather parts and
scatter slices are located by walking that matrix in deterministic
(local-rank-major) order.

Without a topology — or with everything on one node — there is no
hierarchy to exploit and the exchange transparently falls back to the
flat one-sided ring.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.collectives.compressed import CompressedOscAlltoallv, ExchangeStats
from repro.errors import CommunicatorError, CompressionError, WireIntegrityError
from repro.faults import ResilienceReport
from repro.telemetry.metrics import counter as metrics_counter
from repro.telemetry.recorder import flight
from repro.trace import incr as trace_incr
from repro.trace import span as trace_span

__all__ = ["TwoLevelCompressedAlltoallv"]

#: Tag bases for the three two-sided stages (control plane).  Offsets
#: subtract a node or rank index, so the bases are spaced far enough
#: apart that no realistic rank count can collide them.
_TL_LOCAL = -7800
_TL_GATHER = -8000
_TL_INTER = -9000
_TL_SCATTER = -10000


class TwoLevelCompressedAlltoallv(CompressedOscAlltoallv):
    """Compressed all-to-all with node-level message aggregation.

    Accepts the same parameters as
    :class:`~repro.collectives.compressed.CompressedOscAlltoallv`; the
    ``topology`` argument is what activates the two-level schedule (a
    single-node or topology-less setup falls back to the flat ring).
    """

    algorithm = "compressed-twolevel"

    # -- helpers ------------------------------------------------------------------

    def _send_leader(self, src_node: int, dst_node: int) -> int:
        """Rank on ``src_node`` aggregating traffic bound for ``dst_node``.

        Elected ``(dst_node % live)`` over the node's *live* membership:
        on a full node this is the classic ``m % g`` rotation, and after
        a shrink the survivors deterministically re-elect among
        themselves — a dead leader's duties move without any agreement
        traffic beyond the shrink itself.
        """
        topo = self.topology
        assert topo is not None
        live = tuple(topo.ranks_on_node(src_node))
        return live[dst_node % len(live)]

    def _recv_leader(self, src_node: int, dst_node: int) -> int:
        """Rank on ``dst_node`` receiving the aggregate from ``src_node``."""
        topo = self.topology
        assert topo is not None
        live = tuple(topo.ranks_on_node(dst_node))
        return live[src_node % len(live)]

    def _concat(self, parts: list[np.ndarray], total: int) -> np.ndarray:
        """Concatenate uint8 parts into one (possibly pooled) buffer."""
        if total == 0:
            return np.zeros(0, dtype=np.uint8)
        buf = np.empty(total, dtype=np.uint8) if self.pool is None else self.pool.acquire(total)
        off = 0
        for part in parts:
            n = int(part.size)
            if n:
                buf[off : off + n] = part
                off += n
        return buf

    # -- the exchange --------------------------------------------------------------

    def _exchange(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        topo = self.topology
        if topo is None or topo.nnodes <= 1:
            # Nothing to aggregate across — the flat one-sided ring is
            # the same exchange with less plumbing.
            return super()._exchange(send)
        if not getattr(topo, "uniform", True):
            # Survivor topology: some nodes lost ranks.  A node with no
            # live rank cannot host a leader at either end, and with at
            # most one populated node there is no inter-node traffic to
            # aggregate — degrade to the flat compressed path (same
            # bytes, same tolerance, more NIC messages).
            live_counts = [
                len(tuple(topo.ranks_on_node(m))) for m in range(topo.nnodes)
            ]
            if min(live_counts) == 0 or sum(1 for c in live_counts if c) <= 1:
                flight(
                    "exchange-degrade",
                    self.comm.rank,
                    value=float(live_counts.count(0)),
                    detail=f"{live_counts.count(0)} empty node(s)"[:40],
                )
                metrics_counter(
                    "repro_exchange_degraded_total", reason="empty_node"
                ).inc()
                return super()._exchange(send)
            demoted = [
                m for m in range(topo.nnodes) if live_counts[m] < topo.ranks_per_node
            ]
            if demoted:
                # Leader duties on these nodes just moved: survivors
                # re-elect (m % live) over the shrunk node membership.
                flight(
                    "leader-failover",
                    self.comm.rank,
                    value=float(len(demoted)),
                    detail=f"nodes {demoted}"[:40],
                )
                metrics_counter("repro_leader_failovers_total").inc()
        comm, p = self.comm, self.comm.size
        if len(send) != p:
            raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
        me = comm.rank
        my_node = topo.node_of(me)
        stats = ExchangeStats()
        report = ResilienceReport(rank=me)

        # Encode per destination exactly as the flat exchange does; each
        # destination's frames are concatenated into one contiguous blob
        # (the unit the gather/scatter stages route around).
        arrays: list[np.ndarray | None] = []
        blobs: list[np.ndarray] = []
        blob_sizes = np.zeros(p, dtype=np.int64)
        for dest in range(p):
            data = send[dest]
            if data is None or np.asarray(data).size == 0:
                arrays.append(None)
                blobs.append(np.zeros(0, dtype=np.uint8))
                continue
            arr = np.ascontiguousarray(data)
            arrays.append(arr)
            frames = self._encode_block(arr, dest, None, report, stats, self.pool)
            if len(frames) == 1:
                blob = frames[0]
            else:
                blob = self._concat(frames, int(sum(f.size for f in frames)))
                if self.pool is not None:
                    for frame in frames:
                        self.pool.release(frame)
            blobs.append(blob)
            blob_sizes[dest] = blob.size

        # Counts exchange: the p x p size matrix locates every gather
        # part and scatter slice — no routing headers on the wire.
        all_sizes = np.array(comm.allgather(blob_sizes.tolist()), dtype=np.int64)

        # Stage 0: same-node destinations go direct (sends are eager).
        for dest in topo.ranks_on_node(my_node):
            if dest != me and blobs[dest].size:
                with trace_span(
                    "sendrecv", rank=me, peer=dest, bytes=int(blobs[dest].size),
                    intra=True, stage="local",
                ):
                    comm.send(blobs[dest], dest, tag=_TL_LOCAL)

        # Stage 1: gather — ship my remote-bound blocks to this node's
        # send leader for each peer node (leader keeps its own part).
        gathered_parts: dict[int, np.ndarray] = {}  # peer node -> my own stashed part
        for m in range(topo.nnodes):
            if m == my_node:
                continue
            dests = topo.ranks_on_node(m)
            total = int(sum(blobs[d].size for d in dests))
            part = self._concat([blobs[d] for d in dests], total)
            leader = self._send_leader(my_node, m)
            if leader == me:
                gathered_parts[m] = part
            elif total:
                with trace_span(
                    "sendrecv", rank=me, peer=leader, bytes=total,
                    intra=True, stage="gather",
                ):
                    comm.send(part, leader, tag=_TL_GATHER - m)
            if self.pool is not None and leader != me:
                self.pool.release(part)

        # The per-destination blobs are consumed (sends are buffered
        # copies) except the self block, which is decoded later.
        if self.pool is not None:
            for dest in range(p):
                if dest != me:
                    self.pool.release(blobs[dest])

        # Stage 2: inter-node — where I lead, collect my node's parts in
        # local-rank order and send ONE aggregate per peer node.
        for m in range(topo.nnodes):
            if m == my_node or self._send_leader(my_node, m) != me:
                continue
            dests = topo.ranks_on_node(m)
            parts: list[np.ndarray] = []
            for r in topo.ranks_on_node(my_node):
                expected = int(all_sizes[r, dests].sum())
                if r == me:
                    parts.append(gathered_parts.pop(m))
                elif expected:
                    parts.append(np.ascontiguousarray(comm.recv(r, tag=_TL_GATHER - m), dtype=np.uint8))
            total = int(all_sizes[np.ix_(list(topo.ranks_on_node(my_node)), list(dests))].sum())
            if total:
                aggregate = self._concat(parts, total)
                peer = self._recv_leader(my_node, m)
                with trace_span(
                    "sendrecv", rank=me, peer=peer, bytes=total,
                    intra=False, stage="internode",
                ):
                    comm.send(aggregate, peer, tag=_TL_INTER - my_node)
                trace_incr("internode_messages", 1, rank=me)
                if self.pool is not None:
                    self.pool.release(aggregate)
            if self.pool is not None:
                for part in parts:
                    self.pool.release(part)

        # Stage 3: scatter — where I receive a node's aggregate, slice it
        # along the size matrix and forward each block to its rank.
        stashed: dict[int, np.ndarray] = {}  # source rank -> my slice
        my_dests = list(topo.ranks_on_node(my_node))
        for k in range(topo.nnodes):
            if k == my_node or self._recv_leader(k, my_node) != me:
                continue
            srcs = list(topo.ranks_on_node(k))
            total = int(all_sizes[np.ix_(srcs, my_dests)].sum())
            if total == 0:
                continue
            sender = self._send_leader(k, my_node)
            aggregate = np.ascontiguousarray(comm.recv(sender, tag=_TL_INTER - k), dtype=np.uint8)
            off = 0
            for r in srcs:
                for d in my_dests:
                    size = int(all_sizes[r, d])
                    block = aggregate[off : off + size]
                    off += size
                    if d == me:
                        stashed[r] = block
                    elif size:
                        with trace_span(
                            "sendrecv", rank=me, peer=d, bytes=size,
                            intra=True, stage="scatter",
                        ):
                            comm.send(block, d, tag=_TL_SCATTER - r)

        # Stage 4: collect my per-source regions and decode them with the
        # flat exchange's CRC-checked walk.
        recv: list[np.ndarray | None] = [None] * p
        failed: list[int] = []
        for s in range(p):
            size = int(all_sizes[s, me])
            if size == 0:
                recv[s] = np.zeros(0, dtype=np.float64)
                continue
            if s == me:
                region = blobs[me]
            elif topo.same_node(s, me):
                region = np.ascontiguousarray(comm.recv(s, tag=_TL_LOCAL), dtype=np.uint8)
            elif self._recv_leader(topo.node_of(s), my_node) == me:
                region = stashed[s]
            else:
                leader = self._recv_leader(topo.node_of(s), my_node)
                region = np.ascontiguousarray(comm.recv(leader, tag=_TL_SCATTER - s), dtype=np.uint8)
            try:
                with trace_span("decompress", rank=me, peer=s, bytes=size):
                    recv[s] = self._decode_region(region)
            except CompressionError as exc:
                report.record("integrity-failure", peer=s, detail=str(exc))
                failed.append(s)
        if self.pool is not None:
            self.pool.release(blobs[me])

        # Recovery is topology-agnostic (two-sided retransmissions under
        # allgather-agreed failure sets) — reuse it verbatim.
        if self._injector() is not None:
            with trace_span("retry", rank=me, failed=len(failed)):
                self._recover(arrays, recv, failed, report, stats)
        elif failed:
            raise WireIntegrityError(
                f"rank {me}: corrupted block(s) from rank(s) {sorted(failed)} "
                f"with no fault plan active"
            )
        self._finish_exchange(stats, report)
        return recv  # type: ignore[return-value]
