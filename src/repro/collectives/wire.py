"""Byte-level framing of compressed messages for RMA transport.

One-sided puts move raw bytes into a remote window, so a
:class:`~repro.compression.base.CompressedMessage` must be flattened
into a self-describing byte stream and re-inflated on the target.  The
frame is::

    [u64 meta_len][u64 payload_len][pickled metadata][payload bytes]

Frames are self-delimiting (needed when several pipeline fragments land
back-to-back in one window region).  The metadata pickle carries only
small plain values (codec name, dtype, shape, scalar header entries) —
never data — so its cost is a constant few hundred bytes per message and
is excluded from the *modelled* wire size (``CompressedMessage.nbytes``),
matching how a C implementation would pack a fixed small header.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.compression.base import CompressedMessage
from repro.errors import CompressionError

__all__ = ["encode_wire", "decode_wire", "frame_length", "wire_overhead"]

_HDR_BYTES = 16


def encode_wire(msg: CompressedMessage) -> np.ndarray:
    """Flatten a compressed message into a contiguous uint8 frame."""
    meta = pickle.dumps(
        (msg.codec_name, msg.dtype_name, msg.shape, msg.header),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    lens = np.array([len(meta), msg.payload.size], dtype=np.uint64)
    frame = np.empty(_HDR_BYTES + len(meta) + msg.payload.size, dtype=np.uint8)
    frame[:_HDR_BYTES] = lens.view(np.uint8)
    frame[_HDR_BYTES : _HDR_BYTES + len(meta)] = np.frombuffer(meta, dtype=np.uint8)
    frame[_HDR_BYTES + len(meta) :] = msg.payload
    return frame


def _lens(frame: np.ndarray) -> tuple[int, int]:
    if frame.size < _HDR_BYTES:
        raise CompressionError("wire frame too short")
    lens = np.frombuffer(frame[:_HDR_BYTES].tobytes(), dtype=np.uint64)
    return int(lens[0]), int(lens[1])


def frame_length(frame: np.ndarray) -> int:
    """Total byte length of the frame starting at ``frame[0]``."""
    meta_len, payload_len = _lens(np.ascontiguousarray(frame, dtype=np.uint8))
    return _HDR_BYTES + meta_len + payload_len


def decode_wire(frame: np.ndarray) -> CompressedMessage:
    """Re-inflate the frame starting at ``frame[0]`` (extra bytes ignored)."""
    frame = np.ascontiguousarray(frame, dtype=np.uint8)
    meta_len, payload_len = _lens(frame)
    if frame.size < _HDR_BYTES + meta_len + payload_len:
        raise CompressionError("wire frame truncated")
    codec_name, dtype_name, shape, header = pickle.loads(
        frame[_HDR_BYTES : _HDR_BYTES + meta_len].tobytes()
    )
    payload = frame[_HDR_BYTES + meta_len : _HDR_BYTES + meta_len + payload_len].copy()
    return CompressedMessage(codec_name, payload, dtype_name, tuple(shape), header)


def wire_overhead(msg: CompressedMessage) -> int:
    """Framing bytes added on top of the payload for this message."""
    meta = pickle.dumps(
        (msg.codec_name, msg.dtype_name, msg.shape, msg.header),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    return _HDR_BYTES + len(meta)
