"""Byte-level framing of compressed messages for RMA transport (v2).

One-sided puts move raw bytes into a remote window, so a
:class:`~repro.compression.base.CompressedMessage` must be flattened
into a self-describing byte stream and re-inflated on the target.  The
v2 frame is::

    offset  size  field
    ------  ----  -----------------------------------------------
    0       4     magic ``b"RPW2"``
    4       1     format version (2)
    5       1     flags (reserved, 0)
    6       2     reserved (0)
    8       8     u64 meta_len
    16      8     u64 payload_len
    24      4     u32 CRC32 of the metadata bytes
    28      4     u32 CRC32 of the payload bytes
    32      ...   pickled metadata, then payload bytes

Frames are self-delimiting (needed when several pipeline fragments land
back-to-back in one window region) and now *self-validating*: a flipped
bit anywhere — header, metadata or payload — surfaces as a typed
:class:`~repro.errors.WireIntegrityError` instead of unpickling
garbage.  The metadata pickle carries only small plain values (codec
name, dtype, shape, scalar header entries) — never data — and is
deserialized through a restricted unpickler that refuses every global
lookup outside a tiny builtin allow-list, so a corrupted (or hostile)
frame cannot execute code.  Metadata cost stays a constant few dozen
bytes per message and is excluded from the *modelled* wire size
(``CompressedMessage.nbytes``), matching how a C implementation would
pack a fixed small header.
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib

import numpy as np

from repro.compression.base import CompressedMessage
from repro.errors import WireIntegrityError

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "encode_wire",
    "decode_wire",
    "frame_length",
    "wire_overhead",
]

WIRE_MAGIC = b"RPW2"
WIRE_VERSION = 2

#: Header layout: magic, version, flags, reserved, meta_len, payload_len,
#: meta_crc, payload_crc.
_HDR_STRUCT = struct.Struct("<4sBBHQQII")
_HDR_BYTES = _HDR_STRUCT.size  # 32

#: Upper bound on a sane length field — anything larger is corruption
#: (2**48 B = 256 TiB in a single frame is beyond any plan this code runs).
_MAX_LEN = 1 << 48


# -- restricted metadata deserialization ---------------------------------------

#: Globals the metadata unpickler may resolve.  Plain containers and
#: scalars need no global lookups at all; ``complex`` is the one builtin
#: a codec header could legitimately reference.
_ALLOWED_GLOBALS: dict[str, frozenset[str]] = {
    "builtins": frozenset({"complex", "frozenset", "set", "bytearray"}),
}


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):  # noqa: D102
        if name in _ALLOWED_GLOBALS.get(module, frozenset()):
            return super().find_class(module, name)
        raise WireIntegrityError(
            f"wire metadata references disallowed global {module}.{name}"
        )


def _safe_loads(raw: bytes):
    try:
        return _RestrictedUnpickler(io.BytesIO(raw)).load()
    except WireIntegrityError:
        raise
    except Exception as exc:  # pickle raises a zoo of exception types on garbage
        raise WireIntegrityError(f"wire metadata does not unpickle: {exc}") from exc


#: Globals the *control-plane* unpickler may resolve.  ``Comm.bcast`` /
#: ``gather`` move arbitrary-but-known payloads (plans, stats dicts,
#: NumPy arrays and scalars), so this list is wider than the wire-frame
#: metadata one — it adds the NumPy reconstruction entry points, under
#: both the pre-2.0 (``numpy.core``) and 2.x (``numpy._core``) module
#: paths so either side of a version skew can decode the other.
_CONTROL_GLOBALS: dict[str, frozenset[str]] = {
    "builtins": frozenset({"complex", "frozenset", "set", "bytearray"}),
    "numpy": frozenset({"ndarray", "dtype"}),
    "numpy.core.multiarray": frozenset({"_reconstruct", "scalar"}),
    "numpy._core.multiarray": frozenset({"_reconstruct", "scalar"}),
    "numpy.core.numeric": frozenset({"_frombuffer"}),
    "numpy._core.numeric": frozenset({"_frombuffer"}),
}


class _ControlUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):  # noqa: D102
        if name in _CONTROL_GLOBALS.get(module, frozenset()):
            return super().find_class(module, name)
        raise WireIntegrityError(
            f"control payload references disallowed global {module}.{name}"
        )


def control_loads(raw: bytes):
    """Restricted unpickle for collective control payloads (bcast/gather).

    Same defense as wire-frame metadata: a payload naming a global
    outside the allow-list raises :class:`WireIntegrityError` instead
    of importing and executing it.
    """
    try:
        return _ControlUnpickler(io.BytesIO(raw)).load()
    except WireIntegrityError:
        raise
    except Exception as exc:
        raise WireIntegrityError(f"control payload does not unpickle: {exc}") from exc


# -- encode ---------------------------------------------------------------------


def _pack_meta(msg: CompressedMessage) -> bytes:
    return pickle.dumps(
        (msg.codec_name, msg.dtype_name, msg.shape, msg.header),
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def encode_wire(msg: CompressedMessage, *, pool=None) -> np.ndarray:
    """Flatten a compressed message into a contiguous uint8 frame.

    ``pool`` (any object with a ``BufferPool``-style ``acquire``) stages
    the frame in a reusable buffer instead of allocating — the exchange
    hot path releases frames back once their puts have completed.
    """
    meta = _pack_meta(msg)
    payload = msg.payload
    header = _HDR_STRUCT.pack(
        WIRE_MAGIC,
        WIRE_VERSION,
        0,
        0,
        len(meta),
        payload.size,
        zlib.crc32(meta) & 0xFFFFFFFF,
        zlib.crc32(payload.tobytes()) & 0xFFFFFFFF,
    )
    total = _HDR_BYTES + len(meta) + payload.size
    frame = np.empty(total, dtype=np.uint8) if pool is None else pool.acquire(total)
    frame[:_HDR_BYTES] = np.frombuffer(header, dtype=np.uint8)
    frame[_HDR_BYTES : _HDR_BYTES + len(meta)] = np.frombuffer(meta, dtype=np.uint8)
    frame[_HDR_BYTES + len(meta) :] = payload
    return frame


# -- decode ---------------------------------------------------------------------


def _parse_header(frame: np.ndarray) -> tuple[int, int, int, int]:
    """Validate magic/version and return (meta_len, payload_len, crcs)."""
    if frame.size < _HDR_BYTES:
        raise WireIntegrityError(
            f"wire frame too short: {frame.size} B < {_HDR_BYTES} B header"
        )
    magic, version, _flags, _res, meta_len, payload_len, meta_crc, payload_crc = (
        _HDR_STRUCT.unpack(frame[:_HDR_BYTES].tobytes())
    )
    if magic != WIRE_MAGIC:
        raise WireIntegrityError(f"bad wire magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireIntegrityError(
            f"unsupported wire format version {version} (expected {WIRE_VERSION})"
        )
    if meta_len > _MAX_LEN or payload_len > _MAX_LEN:
        raise WireIntegrityError(
            f"implausible frame lengths (meta={meta_len}, payload={payload_len})"
        )
    return int(meta_len), int(payload_len), int(meta_crc), int(payload_crc)


def _as_u8(frame: np.ndarray | bytes | bytearray | memoryview) -> np.ndarray:
    # bytes-likes must go through frombuffer: numpy treats a bytes object
    # handed to ascontiguousarray as a scalar and fails with a bare
    # ValueError instead of viewing it as a u8 sequence.
    if isinstance(frame, (bytes, bytearray, memoryview)):
        return np.frombuffer(frame, dtype=np.uint8)
    return np.ascontiguousarray(frame, dtype=np.uint8)


def frame_length(frame: np.ndarray | bytes) -> int:
    """Total byte length of the frame starting at ``frame[0]``."""
    meta_len, payload_len, _, _ = _parse_header(_as_u8(frame))
    return _HDR_BYTES + meta_len + payload_len


def decode_wire(frame: np.ndarray | bytes) -> tuple[CompressedMessage, int]:
    """Re-inflate the frame starting at ``frame[0]`` (extra bytes ignored).

    Returns ``(message, consumed)`` where ``consumed`` is the total byte
    length of the frame just decoded — the offset of the next frame when
    several land back-to-back in one window region.  Previously callers
    re-parsed the header through :func:`frame_length` to advance; the
    decode already knows the length, so it is returned instead.

    Raises :class:`WireIntegrityError` — a :class:`CompressionError`
    subclass — on any magic, version, truncation or checksum violation.
    """
    frame = _as_u8(frame)
    meta_len, payload_len, meta_crc, payload_crc = _parse_header(frame)
    consumed = _HDR_BYTES + meta_len + payload_len
    if frame.size < consumed:
        raise WireIntegrityError(
            f"wire frame truncated: need {consumed} B, have {frame.size} B"
        )
    meta_raw = frame[_HDR_BYTES : _HDR_BYTES + meta_len].tobytes()
    if zlib.crc32(meta_raw) & 0xFFFFFFFF != meta_crc:
        raise WireIntegrityError("metadata checksum mismatch (corrupted frame)")
    payload = frame[_HDR_BYTES + meta_len : consumed].copy()
    if zlib.crc32(payload.tobytes()) & 0xFFFFFFFF != payload_crc:
        raise WireIntegrityError("payload checksum mismatch (corrupted frame)")
    decoded = _safe_loads(meta_raw)
    if not (isinstance(decoded, tuple) and len(decoded) == 4):
        raise WireIntegrityError("wire metadata has unexpected structure")
    codec_name, dtype_name, shape, header = decoded
    if not isinstance(codec_name, str) or not isinstance(dtype_name, str):
        raise WireIntegrityError("wire metadata has unexpected field types")
    if not isinstance(header, dict):
        raise WireIntegrityError("wire metadata header must be a dict")
    return CompressedMessage(codec_name, payload, dtype_name, tuple(shape), header), consumed


def wire_overhead(msg: CompressedMessage) -> int:
    """Framing bytes added on top of the payload for this message."""
    return _HDR_BYTES + len(_pack_meta(msg))
