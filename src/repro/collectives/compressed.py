"""Compression-integrated one-sided all-to-all (Section V-B).

Adds the two steps the paper describes on top of Algorithm 3:

1. *before the put*: compress the chunk bound for each destination into
   an internal staging buffer (the all-to-all send buffer is const, so
   compression "cannot be done in place");
2. *after the closing fence*: decompress everything received ("instead
   of a pipeline on the target side, we will decompress the entire
   buffer later, once communications are done" — the RMA API lacks the
   constructs for target-side pipelining).

The GPU-stream pipeline (compress chunk *k+1* while chunk *k* flies) is
mirrored functionally by splitting each message into ``pipeline_chunks``
fragments, compressing and putting them one at a time; its *timing*
benefit is modelled in :mod:`repro.netsim.alltoall_model`.  The class
reports per-call :class:`ExchangeStats` so callers can verify the
volume reduction that drives the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collectives.pairwise import ring_peers
from repro.collectives.wire import decode_wire, encode_wire, frame_length
from repro.compression.base import Codec
from repro.errors import CommunicatorError
from repro.machine.topology import Topology
from repro.runtime.base import Comm
from repro.runtime.window import Window

__all__ = ["CompressedOscAlltoallv", "ExchangeStats"]


@dataclass
class ExchangeStats:
    """Volume accounting of one compressed exchange (this rank's sends)."""

    sent_messages: int = 0
    original_bytes: int = 0
    wire_bytes: int = 0

    @property
    def achieved_rate(self) -> float:
        return self.original_bytes / self.wire_bytes if self.wire_bytes else 1.0


class CompressedOscAlltoallv:
    """One-sided ring all-to-all with on-the-fly compression.

    Parameters
    ----------
    comm:
        Runtime communicator.
    codec:
        Message compressor (any :class:`~repro.compression.base.Codec`).
    topology:
        Optional machine topology for the node-aware ring permutation.
    pipeline_chunks:
        Number of fragments each message is split into, mirroring the
        CUDA-stream compression/transfer pipeline.  1 = no chunking.
    """

    def __init__(
        self,
        comm: Comm,
        codec: Codec,
        *,
        topology: Topology | None = None,
        pipeline_chunks: int = 1,
    ) -> None:
        if topology is not None and topology.nranks != comm.size:
            raise CommunicatorError("topology size does not match communicator size")
        if pipeline_chunks < 1:
            raise CommunicatorError(f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        self.comm = comm
        self.codec = codec
        self.topology = topology
        self.pipeline_chunks = int(pipeline_chunks)
        self.last_stats = ExchangeStats()
        self._win: Window | None = None
        self._win_capacity = -1

    # -- helpers ------------------------------------------------------------------

    def _split(self, data: np.ndarray) -> list[np.ndarray]:
        """Fragment a message for the compression/transfer pipeline."""
        if self.pipeline_chunks == 1 or data.size <= 1:
            return [data]
        return [c for c in np.array_split(data, self.pipeline_chunks) if c.size]

    def _ensure_window(self, my_total: int) -> Window:
        """Collectively (re)create the staging window when too small.

        Any single rank outgrowing its cached capacity forces everyone
        to re-create (window creation is collective); the decision is
        agreed via an allgather.
        """
        need = int(my_total)
        grow = self._win is None or need > self._win_capacity
        if any(self.comm.allgather(grow)):
            if self._win is not None:
                self._win.free()
            self._win = self.comm.win_create(need)
            self._win_capacity = need
        return self._win  # type: ignore[return-value]

    def free(self) -> None:
        """Collectively release the cached staging window."""
        if self._win is not None:
            self._win.free()
            self._win = None
            self._win_capacity = -1

    # -- the exchange ----------------------------------------------------------------

    def __call__(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        """Exchange with compression; returns decompressed per-source arrays."""
        comm, p = self.comm, self.comm.size
        if len(send) != p:
            raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
        stats = ExchangeStats()

        # Step 1: compress into internal staging buffers (never in place).
        frames: list[list[np.ndarray]] = []
        frame_sizes = np.zeros(p, dtype=np.int64)
        for dest in range(p):
            data = send[dest]
            if data is None or np.asarray(data).size == 0:
                frames.append([])
                continue
            arr = np.ascontiguousarray(data)
            dest_frames = []
            for frag in self._split(arr):
                msg = self.codec.compress(frag)
                stats.sent_messages += 1
                stats.original_bytes += 8 * msg.n_values
                stats.wire_bytes += msg.nbytes
                dest_frames.append(encode_wire(msg))
            frames.append(dest_frames)
            frame_sizes[dest] = sum(f.size for f in dest_frames)

        # Counts exchange: both sides of an Alltoallv know the counts.
        all_sizes = np.array(comm.allgather(frame_sizes.tolist()), dtype=np.int64)
        my_total = int(all_sizes[:, comm.rank].sum())
        recv_offsets = np.concatenate([[0], np.cumsum(all_sizes[:, comm.rank])[:-1]])

        win = self._ensure_window(my_total)

        win.fence()
        for step in range(p):
            dest, _ = ring_peers(comm.rank, step, p, self.topology)
            dest_frames = frames[dest]
            if not dest_frames:
                continue
            offset = int(all_sizes[: comm.rank, dest].sum())
            # Pipelined puts: each fragment goes out as soon as it is
            # compressed (fragments were staged above; a real GPU stream
            # interleaves, the data movement is identical).
            for frag in dest_frames:
                win.put(frag, dest, offset=offset)
                offset += frag.size
        win.fence()

        # Step 2: decompress the entire received buffer.
        local = win.local_view()
        recv: list[np.ndarray] = []
        for s in range(p):
            size = int(all_sizes[s, comm.rank])
            if size == 0:
                recv.append(np.zeros(0, dtype=np.float64))
                continue
            region = local[int(recv_offsets[s]) : int(recv_offsets[s]) + size]
            parts: list[np.ndarray] = []
            pos = 0
            while pos < region.size:
                msg = decode_wire(region[pos:])
                pos += frame_length(region[pos:])
                parts.append(self.codec.decompress(msg))
            recv.append(parts[0] if len(parts) == 1 else np.concatenate(parts))
        self.last_stats = stats
        return recv
