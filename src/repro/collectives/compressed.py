"""Compression-integrated one-sided all-to-all (Section V-B), self-healing.

Adds the two steps the paper describes on top of Algorithm 3:

1. *before the put*: compress the chunk bound for each destination into
   an internal staging buffer (the all-to-all send buffer is const, so
   compression "cannot be done in place");
2. *after the closing fence*: decompress everything received ("instead
   of a pipeline on the target side, we will decompress the entire
   buffer later, once communications are done" — the RMA API lacks the
   constructs for target-side pipelining).

On top of that the exchange is *resilient*: every frame on the wire is
checksummed (wire format v2), decode failures are detected per source
block, and a bounded recovery protocol retransmits failed blocks —
first with the original codec per the :class:`~repro.faults.RetryPolicy`,
then walking the degradation ladder **lossy -> lossless -> raw FP64**.
Transient codec failures at compress time and per-message ``e_tol``
violations degrade the same way.  Everything the machinery does is
recorded in a per-exchange :class:`~repro.faults.ResilienceReport`
(:attr:`last_report`); when nothing goes wrong the report is empty and
the exchange is byte-identical to the non-resilient one.

The GPU-stream pipeline (compress chunk *k+1* while chunk *k* flies) is
mirrored functionally by splitting each message into ``pipeline_chunks``
fragments, compressing and putting them one at a time; its *timing*
benefit is modelled in :mod:`repro.netsim.alltoall_model`.  The class
reports per-call :class:`ExchangeStats` so callers can verify the
volume reduction that drives the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.collectives.pairwise import ring_peers
from repro.collectives.wire import decode_wire, encode_wire
from repro.compression.base import Codec, CompressedMessage, IdentityCodec
from repro.compression.lossless import ShuffleZlibCodec
from repro.conformance import hooks
from repro.errors import (
    CommunicatorError,
    CompressionError,
    RetryExhaustedError,
    TransientCodecError,
    WireIntegrityError,
)
from repro.faults import ResilienceReport, RetryPolicy
from repro.machine.topology import Topology
from repro.runtime.base import Comm
from repro.runtime.window import Window
from repro.telemetry.metrics import counter as tele_counter
from repro.telemetry.metrics import gauge as tele_gauge
from repro.telemetry.metrics import histogram as tele_histogram
from repro.telemetry.recorder import (
    flight,
    live_add,
    live_add_many,
    record_resilience_report,
)
from repro.tuning.pool import BufferPool
from repro.trace import incr as trace_incr
from repro.trace import record_report as trace_report
from repro.trace import span as trace_span

__all__ = ["CompressedOscAlltoallv", "ExchangeStats"]

#: Tag base for recovery-round retransmissions (control plane).
_RETRY_TAG = -7000


@dataclass
class ExchangeStats:
    """Volume accounting of one compressed exchange (this rank's sends)."""

    sent_messages: int = 0
    original_bytes: int = 0
    wire_bytes: int = 0
    retransmissions: int = 0
    retransmitted_bytes: int = 0
    #: Largest measured round-trip relative error of this exchange's
    #: lossy messages (0.0 for lossless sends); only meaningful when
    #: ``error_measured`` — i.e. the exchange ran with an ``e_tol``.
    achieved_error: float = 0.0
    error_measured: bool = False

    @property
    def achieved_rate(self) -> float:
        """``original / wire``; 0/0 is 1.0, nonzero/0 is ``inf`` (anomaly)."""
        if self.wire_bytes:
            return self.original_bytes / self.wire_bytes
        return 1.0 if self.original_bytes == 0 else float("inf")


class CompressedOscAlltoallv:
    """One-sided ring all-to-all with on-the-fly compression + recovery.

    Parameters
    ----------
    comm:
        Runtime communicator.
    codec:
        Message compressor (any :class:`~repro.compression.base.Codec`).
    topology:
        Optional machine topology for the node-aware ring permutation.
    pipeline_chunks:
        Number of fragments each message is split into, mirroring the
        CUDA-stream compression/transfer pipeline.  1 = no chunking.
    retry_policy:
        Bounded retry/backoff schedule for recovery rounds.  Defaults
        to :class:`RetryPolicy`\\ ``()`` (2 same-codec retries);
        :meth:`RetryPolicy.disabled` degrades on the first failure.
    e_tol:
        Optional per-message error tolerance.  When set, each lossy
        message is round-tripped locally before the put; if the
        achieved relative error exceeds ``e_tol`` the message is sent
        through the lossless fallback instead.
    lossless_fallback:
        Lossless codec used by the degradation ladder (default:
        byte-shuffle + zlib).
    pool:
        Optional :class:`~repro.tuning.pool.BufferPool` staging the wire
        frames; with a warm pool a steady-state exchange allocates no
        per-call staging memory.
    tuned:
        Tuning-profile key that selected this exchange's configuration
        (stamped on the exchange span for the perf gate); ``None`` for
        hand-picked settings.
    """

    #: Algorithm name stamped on the exchange span.
    algorithm = "compressed-osc"

    def __init__(
        self,
        comm: Comm,
        codec: Codec,
        *,
        topology: Topology | None = None,
        pipeline_chunks: int = 1,
        retry_policy: RetryPolicy | None = None,
        e_tol: float | None = None,
        lossless_fallback: Codec | None = None,
        pool: BufferPool | None = None,
        tuned: str | None = None,
    ) -> None:
        if topology is not None and topology.nranks != comm.size:
            raise CommunicatorError("topology size does not match communicator size")
        if pipeline_chunks < 1:
            raise CommunicatorError(f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        self.comm = comm
        self.codec = codec
        self.topology = topology
        self.pipeline_chunks = int(pipeline_chunks)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.e_tol = e_tol
        self._lossless = lossless_fallback if lossless_fallback is not None else ShuffleZlibCodec(level=1)
        if not self._lossless.lossless:
            raise CommunicatorError(
                f"lossless_fallback must be lossless, got {self._lossless.name}"
            )
        self._raw = IdentityCodec()
        self.pool = pool
        self.tuned = tuned
        self.last_stats = ExchangeStats()
        self.last_report = ResilienceReport(rank=comm.rank)
        self._win: Window | None = None
        self._win_capacity = -1
        self._round = 0

    # -- helpers ------------------------------------------------------------------

    def _split(self, data: np.ndarray) -> list[np.ndarray]:
        """Fragment a message for the compression/transfer pipeline."""
        if self.pipeline_chunks == 1 or data.size <= 1:
            return [data]
        return [c for c in np.array_split(data, self.pipeline_chunks) if c.size]

    def _ladder(self) -> list[Codec]:
        """Degradation ladder: primary -> lossless fallback -> raw FP64."""
        ladder: list[Codec] = [self.codec]
        for fallback in (self._lossless, self._raw):
            if all(fallback.name != c.name for c in ladder):
                ladder.append(fallback)
        return ladder

    def _decompress(self, msg: CompressedMessage) -> np.ndarray:
        """Resolve the decompressor from the frame's codec name.

        Degraded retransmissions arrive encoded by a ladder codec, not
        necessarily the primary one.
        """
        for codec in (self.codec, self._lossless, self._raw):
            if msg.codec_name == codec.name:
                return codec.decompress(msg)
        raise CompressionError(f"frame names unknown codec {msg.codec_name!r}")

    def _injector(self):
        world = getattr(self.comm, "world", None)
        return getattr(world, "injector", None)

    def _ensure_window(self, my_total: int) -> Window:
        """Collectively (re)create the staging window when too small.

        Any single rank outgrowing its cached capacity forces everyone
        to re-create (window creation is collective); the decision is
        agreed via an allgather.
        """
        need = int(my_total)
        grow = self._win is None or need > self._win_capacity
        if any(self.comm.allgather(grow)):
            if self._win is not None:
                self._win.free()
            self._win = self.comm.win_create(need)
            self._win_capacity = need
        return self._win  # type: ignore[return-value]

    def free(self) -> None:
        """Collectively release the cached staging window."""
        if self._win is not None:
            self._win.free()
            self._win = None
            self._win_capacity = -1

    # -- encode side ----------------------------------------------------------------

    def _compress_fragment(
        self, frag: np.ndarray, dest: int, report: ResilienceReport
    ) -> tuple[CompressedMessage, float | None]:
        """Compress one fragment, riding out transient codec failures.

        Same-codec retries follow the policy's backoff; once exhausted
        the ladder steps down (the fallback is then also given
        ``max_attempts`` tries before the next step).

        Returns the message plus the measured round-trip relative error
        of the fragment: a float whenever ``e_tol`` is set (0.0 for a
        lossless send — the round trip is exact), ``None`` when no
        tolerance is configured and nothing was measured.
        """
        injector = self._injector()
        policy = self.retry_policy
        ladder = self._ladder()
        step, retries_in_step = 0, 0
        started = time.monotonic()
        budget_noted = False
        while True:
            codec = ladder[step]
            try:
                if injector is not None:
                    injector.codec_fault(self.comm.rank, dest)
                msg = codec.compress(frag)
            except TransientCodecError as exc:
                report.record("transient-codec", peer=dest, codec=codec.name, detail=str(exc))
                elapsed = time.monotonic() - started
                if policy.budget_exhausted(elapsed) and not budget_noted:
                    # Stop burning same-codec retries; every further failure
                    # walks the ladder immediately.
                    budget_noted = True
                    report.record(
                        "budget-exhausted",
                        peer=dest,
                        codec=codec.name,
                        detail=f"max_elapsed={policy.max_elapsed}s spent",
                    )
                if retries_in_step < policy.max_attempts and not budget_noted:
                    delay = policy.delay(retries_in_step, elapsed=elapsed)
                    report.record("retry", peer=dest, attempt=retries_in_step, codec=codec.name)
                    if delay > 0.0:
                        time.sleep(delay)
                    retries_in_step += 1
                    continue
                step += 1
                retries_in_step = 0
                if step >= len(ladder):
                    raise RetryExhaustedError(
                        f"rank {self.comm.rank}: compression for rank {dest} failed "
                        f"through the whole ladder"
                    ) from exc
                report.record("degrade", peer=dest, codec=ladder[step].name,
                              detail=f"{codec.name} -> {ladder[step].name} (transient failures)")
                continue
            achieved: float | None = None
            if self.e_tol is not None and not codec.lossless:
                # Lazy import: repro.accuracy pulls in the FFT layer,
                # which itself imports this module at load time.
                from repro.accuracy.bounds import achieved_relative_error, tolerance_exceeded

                achieved = achieved_relative_error(frag, codec.decompress(msg))
                exceeded = tolerance_exceeded(achieved, self.e_tol)
            else:
                if self.e_tol is not None:
                    achieved = 0.0  # lossless send: the round trip is exact
                exceeded = False
            if exceeded:
                report.record("tolerance-exceeded", peer=dest, codec=codec.name,
                              detail=f"e_tol={self.e_tol:g}")
                lossless_step = next(i for i, c in enumerate(ladder) if c.lossless)
                step = max(step, lossless_step)
                report.record("degrade", peer=dest, codec=ladder[step].name,
                              detail=f"{codec.name} -> {ladder[step].name} (e_tol)")
                continue
            return msg, achieved

    def _encode_block(
        self,
        arr: np.ndarray,
        dest: int,
        codec: Codec | None,
        report: ResilienceReport,
        stats: ExchangeStats | None,
        pool: BufferPool | None = None,
    ) -> list[np.ndarray]:
        """Encode one destination's data into wire frames.

        ``codec=None`` uses the resilient primary path (transient-fault
        retries + e_tol check); recovery rounds pass an explicit ladder
        codec instead.  ``pool`` stages the frames in reusable buffers
        (the hot path releases them once the puts have landed).
        """
        frames: list[np.ndarray] = []
        for chunk_idx, frag in enumerate(self._split(arr)):
            with trace_span(
                "compress",
                rank=self.comm.rank,
                peer=dest,
                bytes=int(frag.nbytes),
                codec=(codec or self.codec).name,
                chunk=chunk_idx,
            ):
                if codec is None:
                    msg, achieved = self._compress_fragment(frag, dest, report)
                else:
                    msg, achieved = codec.compress(frag), None
            if stats is not None:
                stats.sent_messages += 1
                stats.original_bytes += 8 * msg.n_values
                stats.wire_bytes += msg.nbytes
                if achieved is not None:
                    stats.achieved_error = max(stats.achieved_error, achieved)
                    stats.error_measured = True
            frames.append(encode_wire(msg, pool=pool))
        return frames

    # -- decode side -----------------------------------------------------------------

    def _decode_region(self, region: np.ndarray) -> np.ndarray:
        """Walk and decode the checksummed frames of one source block.

        Each header is parsed exactly once — :func:`decode_wire` returns
        the consumed frame length alongside the message.  An empty
        region decodes to an empty FP64 block (``np.concatenate`` on an
        empty list raises, and a zero-frame region is legitimate when a
        peer's block compressed to nothing).
        """
        parts: list[np.ndarray] = []
        pos = 0
        while pos < region.size:
            msg, consumed = decode_wire(region[pos:])
            pos += consumed
            parts.append(self._decompress(msg))
        if not parts:
            return np.zeros(0, dtype=np.float64)
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    # -- recovery --------------------------------------------------------------------

    def _recover(
        self,
        arrays: list[np.ndarray | None],
        recv: list[np.ndarray | None],
        failed: list[int],
        report: ResilienceReport,
        stats: ExchangeStats,
    ) -> None:
        """Collective recovery rounds: retransmit failed blocks two-sided.

        Every rank participates in each round (the failure sets are
        agreed via allgather) so senders and receivers stay matched.
        Rounds ``0 .. max_attempts-1`` retransmit with the original
        codec; the next rounds walk the ladder (lossless, then raw).
        When the ladder is exhausted a typed error is raised — never a
        silent corruption.
        """
        comm, policy = self.comm, self.retry_policy
        ladder = self._ladder()
        started = time.monotonic()
        # Exhaustion of the total-deadline budget is agreed alongside the
        # failure sets: round tags and codec choice derive from `attempt`,
        # so every rank must fast-forward at the same round boundary.
        gathered = comm.allgather((sorted(failed), policy.budget_exhausted(0.0)))
        needs: list[list[int]] = [g[0] for g in gathered]
        any_exhausted = any(g[1] for g in gathered)
        attempt = 0
        prev_codec = ladder[0].name
        while any(needs):
            involved_now = bool(failed) or any(comm.rank in srcs for srcs in needs)
            if any_exhausted and attempt < policy.max_attempts:
                # Budget spent: skip the remaining same-codec rounds and
                # go straight to the degradation ladder.
                if involved_now:
                    report.record(
                        "budget-exhausted",
                        attempt=attempt,
                        detail=f"max_elapsed={policy.max_elapsed}s spent; "
                        f"fast-forwarding to the degradation ladder",
                    )
                attempt = policy.max_attempts
            extra = attempt - policy.max_attempts
            if extra < 0:
                codec = ladder[0]
            elif 1 + extra < len(ladder):
                codec = ladder[1 + extra]
            else:
                raise RetryExhaustedError(
                    f"rank {comm.rank}: blocks from rank(s) {sorted(failed)} still "
                    f"corrupt after {attempt} recovery round(s) ending at raw FP64"
                )
            involved = involved_now
            if codec.name != prev_codec and involved:
                report.record("degrade", attempt=attempt, codec=codec.name,
                              detail=f"recovery ladder {prev_codec} -> {codec.name}")
            prev_codec = codec.name
            if extra < 0:
                delay = policy.delay(attempt, elapsed=time.monotonic() - started)
                if delay > 0.0:
                    time.sleep(delay)
            tag = _RETRY_TAG - attempt
            # Retransmit my block to every rank that failed to decode it.
            for dest, sources in enumerate(needs):
                if comm.rank not in sources:
                    continue
                arr = arrays[dest]
                assert arr is not None  # zero-size blocks cannot fail decode
                frames = self._encode_block(arr, dest, codec, report, None)
                blob = frames[0] if len(frames) == 1 else np.concatenate(frames)
                report.record("retransmit", peer=dest, attempt=attempt, codec=codec.name)
                stats.retransmissions += 1
                stats.retransmitted_bytes += int(blob.size)
                comm.send(blob, dest, tag=tag)
            # Collect retransmissions for my failed blocks.
            still_failed: list[int] = []
            for source in sorted(failed):
                if extra < 0:
                    report.record("retry", peer=source, attempt=attempt, codec=codec.name)
                region = comm.recv(source, tag=tag)
                try:
                    recv[source] = self._decode_region(np.ascontiguousarray(region, dtype=np.uint8))
                except CompressionError as exc:
                    report.record("integrity-failure", peer=source, attempt=attempt,
                                  detail=str(exc))
                    still_failed.append(source)
                else:
                    report.record("recovered", peer=source, attempt=attempt, codec=codec.name)
            failed = still_failed
            elapsed = time.monotonic() - started
            gathered = comm.allgather((sorted(failed), policy.budget_exhausted(elapsed)))
            needs = [g[0] for g in gathered]
            any_exhausted = any_exhausted or any(g[1] for g in gathered)
            attempt += 1

    # -- the exchange ----------------------------------------------------------------

    def __call__(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        """Exchange with compression; returns decompressed per-source arrays."""
        # The exchange span makes one collective call a critical-path
        # scope of its own even outside a reshape (repro.perf groups
        # outermost exchange spans into rounds).
        attrs = dict(
            rank=self.comm.rank,
            algorithm=self.algorithm,
            codec=self.codec.name,
            pipeline_chunks=self.pipeline_chunks,
        )
        if self.tuned is not None:
            attrs["tuned"] = self.tuned
        started = time.monotonic()
        with trace_span("exchange", **attrs):
            recv = self._exchange(send)
        self._observe_exchange_time(time.monotonic() - started)
        return recv

    @property
    def _tele(self) -> dict[str, Any]:
        """Metric handles for this op's rank, resolved once.

        The registry's get-or-create does a sorted-tuple key build under
        a lock per call; on the per-round hot path that lookup cost is
        most of the telemetry overhead, so the handles are cached.
        """
        cached = self.__dict__.get("_tele_handles")
        if cached is None:
            rank = self.comm.rank
            cached = {
                "rounds": tele_counter("repro_exchange_rounds_total", rank=rank),
                "wire": tele_counter("repro_wire_bytes_total", rank=rank),
                "logical": tele_counter("repro_logical_bytes_total", rank=rank),
                "retries": tele_counter("repro_retries_total", rank=rank),
                "degradations": tele_counter("repro_degradations_total", rank=rank),
                "ratio": tele_gauge("repro_compression_ratio", rank=rank),
                "achieved": tele_gauge("repro_achieved_error", rank=rank),
                "headroom": tele_gauge("repro_error_headroom", rank=rank),
                "bandwidth": tele_gauge("repro_link_bandwidth_bytes_per_s", rank=rank),
                "seconds": tele_histogram("repro_exchange_seconds", rank=rank),
            }
            self.__dict__["_tele_handles"] = cached
        return cached

    def _observe_exchange_time(self, elapsed: float) -> None:
        """Per-link bandwidth gauge + latency histogram for the metrics
        registry (the tracer records the same span; this survives runs
        with no tracer installed)."""
        tele = self._tele
        tele["seconds"].observe(elapsed)
        if elapsed > 0.0 and self.last_stats.wire_bytes:
            tele["bandwidth"].set(self.last_stats.wire_bytes / elapsed)

    def _finish_exchange(self, stats: ExchangeStats, report: ResilienceReport) -> None:
        """Common exchange epilogue for the flat and two-level paths.

        Publishes the round to every observability surface at once: the
        opt-in tracer (counters + report), the always-on flight recorder
        (ring events + live gauges) and the metrics registry.
        """
        comm = self.comm
        self.last_stats = stats
        self.last_report = report
        trace_incr("messages", stats.sent_messages, rank=comm.rank)
        trace_incr("logical_bytes", stats.original_bytes, rank=comm.rank)
        trace_incr("wire_bytes", stats.wire_bytes, rank=comm.rank)
        trace_report(report)

        rank = comm.rank
        round_no = self._round
        self._round += 1
        ratio = stats.achieved_rate
        flight(
            "exchange-round",
            rank,
            round_=round_no,
            value=float(stats.wire_bytes),
            value2=ratio if ratio != float("inf") else 0.0,
            detail=self.codec.name,
        )
        tele = self._tele
        tele["rounds"].inc()
        tele["wire"].inc(stats.wire_bytes)
        tele["logical"].inc(stats.original_bytes)
        if ratio != float("inf"):
            tele["ratio"].set(ratio)
        error_gauges = None
        if self.e_tol is not None and stats.error_measured:
            headroom = self.e_tol - stats.achieved_error
            flight(
                "error",
                rank,
                round_=round_no,
                value=stats.achieved_error,
                value2=headroom,
                detail=self.codec.name,
            )
            tele["achieved"].set(stats.achieved_error)
            tele["headroom"].set(headroom)
            error_gauges = {
                "achieved_error": stats.achieved_error,
                "error_headroom": headroom,
                "e_tol": self.e_tol,
            }
        live_add_many(
            rank,
            {
                "rounds": 1.0,
                "wire_bytes": float(stats.wire_bytes),
                "logical_bytes": float(stats.original_bytes),
            },
            sets=error_gauges,
        )
        if not report.clean:
            record_resilience_report(report, round_=round_no)
            if report.retries:
                tele["retries"].inc(report.retries)
                live_add(rank, "retries", float(report.retries))
            if report.degradations:
                tele["degradations"].inc(report.degradations)
                live_add(rank, "degradations", float(report.degradations))

    def _exchange(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        comm, p = self.comm, self.comm.size
        if len(send) != p:
            raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
        stats = ExchangeStats()
        report = ResilienceReport(rank=comm.rank)

        # Step 1: compress into internal staging buffers (never in place).
        arrays: list[np.ndarray | None] = []
        frames: list[list[np.ndarray]] = []
        frame_sizes = np.zeros(p, dtype=np.int64)
        for dest in range(p):
            data = send[dest]
            if data is None or np.asarray(data).size == 0:
                arrays.append(None)
                frames.append([])
                continue
            arr = np.ascontiguousarray(data)
            arrays.append(arr)
            dest_frames = self._encode_block(arr, dest, None, report, stats, self.pool)
            frames.append(dest_frames)
            frame_sizes[dest] = sum(f.size for f in dest_frames)

        # Counts exchange: both sides of an Alltoallv know the counts.
        all_sizes = np.array(comm.allgather(frame_sizes.tolist()), dtype=np.int64)
        my_total = int(all_sizes[:, comm.rank].sum())
        recv_offsets = np.concatenate([[0], np.cumsum(all_sizes[:, comm.rank])[:-1]])

        win = self._ensure_window(my_total)

        with trace_span("fence", rank=comm.rank, epoch="open"):
            win.fence()
        for step in range(p):
            dest, _ = ring_peers(comm.rank, step, p, self.topology)
            dest_frames = frames[dest]
            if not dest_frames:
                continue
            offset = hooks.mutate(
                "compressed.put_offset",
                int(all_sizes[: comm.rank, dest].sum()),
                rank=comm.rank,
                dest=dest,
            )
            # Pipelined puts: each fragment goes out as soon as it is
            # compressed (fragments were staged above; a real GPU stream
            # interleaves, the data movement is identical).
            intra = self.topology.same_node(comm.rank, dest) if self.topology else dest == comm.rank
            for chunk_idx, frag in enumerate(dest_frames):
                with trace_span(
                    "put",
                    rank=comm.rank,
                    peer=dest,
                    bytes=int(frag.size),
                    chunk=chunk_idx,
                    intra=intra,
                ):
                    win.put(frag, dest, offset=offset)
                offset += frag.size

        with trace_span("fence", rank=comm.rank, epoch="close"):
            win.fence()

        # Puts have landed in every target window; the staging frames
        # can go back to the pool for the next exchange.
        if self.pool is not None:
            for dest_frames in frames:
                for frame in dest_frames:
                    self.pool.release(frame)

        # Step 2: decompress the entire received buffer, CRC-checked per
        # frame; blocks that fail integrity are queued for recovery.
        local = win.local_view()
        recv: list[np.ndarray | None] = [None] * p
        failed: list[int] = []
        for s in range(p):
            size = int(all_sizes[s, comm.rank])
            if size == 0:
                recv[s] = np.zeros(0, dtype=np.float64)
                continue
            region = local[int(recv_offsets[s]) : int(recv_offsets[s]) + size]
            try:
                with trace_span("decompress", rank=comm.rank, peer=s, bytes=size):
                    recv[s] = self._decode_region(region)
            except CompressionError as exc:
                report.record("integrity-failure", peer=s, detail=str(exc))
                failed.append(s)

        # Step 3: collective recovery rounds.  Only runs under an active
        # fault plan — injector presence is world-global, so every rank
        # takes the same branch and the recovery collectives stay
        # matched.  A CRC failure with *no* fault source is a real
        # transport/codec bug: raise it rather than mask it with a
        # retransmission.
        if self._injector() is not None:
            with trace_span("retry", rank=comm.rank, failed=len(failed)):
                self._recover(arrays, recv, failed, report, stats)
        elif failed:
            raise WireIntegrityError(
                f"rank {comm.rank}: corrupted block(s) from rank(s) {sorted(failed)} "
                f"with no fault plan active"
            )
        self._finish_exchange(stats, report)
        return recv  # type: ignore[return-value]
