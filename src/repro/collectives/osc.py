"""One-sided (OSC) ring all-to-all — Algorithm 3 of the paper.

Every rank exposes a receive staging buffer through an RMA window; the
ring then replaces each two-sided send with an ``MPI_Win_put`` into the
destination's window at the offset reserved for this source.  Two fences
delimit the exchange epoch ("the global synchronization needed to ensure
all communication in the window are now completed at both the origin and
the target").

Window creation "is a collective operation and therefore has a high
cost.  However, when the all-to-all is performed multiple times on the
same memory fragment, it is possible to cache this window" — hence the
class form: one :class:`OscAlltoallv` instance caches its window across
calls.  The cached window is reused as long as every rank's receive
volume still *fits* its existing buffer; it is only re-created
(collectively, deterministically on all ranks) when some rank outgrows
its capacity — a shrinking size matrix keeps the window, preserving the
paper's caching argument for variable loads.

With ``verify=True`` the exchange is self-checking: per-block CRC32
checksums are agreed alongside the size matrix, verified after the
closing fence, and mismatching blocks are retransmitted two-sided under
the :class:`~repro.faults.RetryPolicy`; the outcome is recorded in
:attr:`OscAlltoallv.last_report`.
"""

from __future__ import annotations

import time
import zlib
from typing import Sequence

import numpy as np

from repro.conformance import hooks
from repro.errors import CommunicatorError, RetryExhaustedError
from repro.faults import ResilienceReport, RetryPolicy
from repro.machine.topology import Topology
from repro.runtime.base import Comm
from repro.runtime.window import Window
from repro.telemetry.metrics import counter as tele_counter
from repro.telemetry.recorder import flight, live_add, record_resilience_report
from repro.tuning.pool import BufferPool
from repro.trace import incr as trace_incr
from repro.trace import record_report as trace_report
from repro.trace import span as trace_span

__all__ = ["OscAlltoallv", "osc_alltoallv"]

#: Tag base for verify-mode retransmissions (control plane).
_VERIFY_TAG = -7500


def _crc(chunk: np.ndarray) -> int:
    return zlib.crc32(chunk.tobytes()) & 0xFFFFFFFF


class OscAlltoallv:
    """Reusable one-sided ring all-to-all with a cached window.

    Parameters
    ----------
    comm:
        Runtime communicator (all ranks construct collectively).
    topology:
        Optional machine topology enabling the node-aware ring
        permutation (Section V).
    verify:
        Checksum every block (CRC32 agreed with the size matrix) and
        retransmit corrupted ones two-sided.
    retry_policy:
        Bounded retry/backoff schedule for verify-mode recovery.
    pool:
        Optional :class:`~repro.tuning.pool.BufferPool` staging the
        per-source receive copies; callers release them when consumed.
    """

    def __init__(
        self,
        comm: Comm,
        *,
        topology: Topology | None = None,
        verify: bool = False,
        retry_policy: RetryPolicy | None = None,
        pool: BufferPool | None = None,
    ) -> None:
        if topology is not None and topology.nranks != comm.size:
            raise CommunicatorError("topology size does not match communicator size")
        self.comm = comm
        self.topology = topology
        self.verify = bool(verify)
        self.pool = pool
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.last_report = ResilienceReport(rank=comm.rank)
        self._win: Window | None = None
        self._capacities: np.ndarray | None = None

    # -- window management ------------------------------------------------------

    def _ensure_window(self, all_sizes: np.ndarray) -> tuple[Window, np.ndarray]:
        """(Re)create the cached window only when some rank outgrows it.

        ``all_sizes[s, d]`` = bytes rank ``s`` sends to rank ``d``.  The
        decision is a pure function of the ``all_sizes`` history
        (identical on every rank), keeping creation collective.  A size
        matrix that needs *less* capacity everywhere reuses the cached
        window — offsets are recomputed per call, the window is just a
        byte arena.
        """
        totals = all_sizes.sum(axis=0).astype(np.int64)  # totals[d] = bytes d receives
        if self._win is None or self._capacities is None or bool(np.any(totals > self._capacities)):
            if self._win is not None:
                self._win.free()
            caps = totals if self._capacities is None else np.maximum(totals, self._capacities)
            self._win = self.comm.win_create(int(caps[self.comm.rank]))
            self._capacities = caps
        # Receive offsets: source s lands at sum of earlier sources' sizes.
        offsets = np.concatenate([[0], np.cumsum(all_sizes[:, self.comm.rank])[:-1]])
        return self._win, offsets.astype(np.int64)

    def free(self) -> None:
        """Collectively release the cached window (if any)."""
        if self._win is not None:
            self._win.free()
            self._win = None
            self._capacities = None

    # -- verify-mode recovery ------------------------------------------------------

    def _recover(
        self,
        chunks: list[np.ndarray],
        recv: list[np.ndarray],
        all_crcs: np.ndarray,
        failed: list[int],
        report: ResilienceReport,
    ) -> None:
        """Retransmit corrupted blocks two-sided until clean or exhausted."""
        comm, policy = self.comm, self.retry_policy
        needs: list[list[int]] = comm.allgather(sorted(failed))
        attempt = 0
        started = time.monotonic()
        while any(needs):
            elapsed = time.monotonic() - started
            if attempt > policy.max_attempts:
                raise RetryExhaustedError(
                    f"rank {comm.rank}: raw blocks from rank(s) {sorted(failed)} "
                    f"still corrupt after {attempt} retransmission(s)"
                )
            if policy.budget_exhausted(elapsed):
                raise RetryExhaustedError(
                    f"rank {comm.rank}: retry budget of {policy.max_elapsed}s "
                    f"spent after {attempt} retransmission(s); blocks from "
                    f"rank(s) {sorted(failed)} still corrupt"
                )
            delay = policy.delay(attempt, elapsed=elapsed) if attempt > 0 else 0.0
            if delay > 0.0:
                time.sleep(delay)
            tag = _VERIFY_TAG - attempt
            for dest, sources in enumerate(needs):
                if comm.rank in sources:
                    report.record("retransmit", peer=dest, attempt=attempt)
                    comm.send(chunks[dest], dest, tag=tag)
            still_failed: list[int] = []
            for source in sorted(failed):
                report.record("retry", peer=source, attempt=attempt)
                block = np.ascontiguousarray(comm.recv(source, tag=tag), dtype=np.uint8)
                if block.size != recv[source].size or _crc(block) != int(all_crcs[source, comm.rank]):
                    report.record("integrity-failure", peer=source, attempt=attempt,
                                  detail="retransmitted block checksum mismatch")
                    still_failed.append(source)
                else:
                    recv[source] = block
                    report.record("recovered", peer=source, attempt=attempt)
            failed = still_failed
            needs = comm.allgather(sorted(failed))
            attempt += 1

    # -- the exchange -------------------------------------------------------------

    def __call__(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        """Exchange ``send[d]`` → rank ``d``; returns per-source uint8 chunks.

        The window transports raw bytes, so receives are returned as
        ``uint8`` arrays; callers re-view them (the FFT layer exchanges
        packed byte streams anyway).
        """
        comm, p = self.comm, self.comm.size
        if len(send) != p:
            raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
        report = ResilienceReport(rank=comm.rank)
        chunks = [
            np.zeros(0, dtype=np.uint8)
            if c is None
            else np.ascontiguousarray(c).view(np.uint8).reshape(-1)
            for c in send
        ]
        my_sizes = np.array([c.size for c in chunks], dtype=np.int64)
        if self.verify:
            my_crcs = [_crc(c) for c in chunks]
            gathered = comm.allgather((my_sizes.tolist(), my_crcs))
            all_sizes = np.array([g[0] for g in gathered], dtype=np.int64)
            all_crcs = np.array([g[1] for g in gathered], dtype=np.int64)
        else:
            all_sizes = np.array(comm.allgather(my_sizes.tolist()), dtype=np.int64)
            all_crcs = None

        win, offsets = self._ensure_window(all_sizes)

        from repro.collectives.pairwise import ring_peers

        with trace_span("fence", rank=comm.rank, epoch="open"):
            win.fence()  # open epoch — "synchronization phase to make sure all processes are ready"
        for step in range(p):
            dest, _ = ring_peers(comm.rank, step, p, self.topology)
            data = chunks[dest]
            if data.size:
                # where my bytes live in dest's window:
                offset = hooks.mutate(
                    "osc.put_offset",
                    int(all_sizes[: comm.rank, dest].sum()),
                    rank=comm.rank,
                    dest=dest,
                )
                intra = (
                    self.topology.same_node(comm.rank, dest)
                    if self.topology
                    else dest == comm.rank
                )
                with trace_span("put", rank=comm.rank, peer=dest, bytes=int(data.size), intra=intra):
                    win.put(data, dest, offset=offset)
                trace_incr("messages", 1, rank=comm.rank)
                trace_incr("logical_bytes", int(data.size), rank=comm.rank)
                trace_incr("wire_bytes", int(data.size), rank=comm.rank)
        with trace_span("fence", rank=comm.rank, epoch="close"):
            win.fence()  # close epoch — all puts complete everywhere

        local = win.local_view()
        recv: list[np.ndarray] = []
        for s in range(p):
            size = int(all_sizes[s, comm.rank])
            region = local[int(offsets[s]) : int(offsets[s]) + size]
            if self.pool is None:
                recv.append(region.copy())
            else:
                block = self.pool.acquire(size)
                np.copyto(block, region)
                recv.append(block)

        if self.verify:
            failed = [
                s
                for s in range(p)
                if recv[s].size and _crc(recv[s]) != int(all_crcs[s, comm.rank])
            ]
            for s in failed:
                report.record("integrity-failure", peer=s, detail="block checksum mismatch")
            with trace_span("retry", rank=comm.rank, failed=len(failed)):
                self._recover(chunks, recv, all_crcs, failed, report)
        self.last_report = report
        trace_report(report)
        wire = int(my_sizes.sum())
        flight("exchange-round", comm.rank, value=float(wire), detail="raw-osc")
        tele_counter("repro_exchange_rounds_total", rank=comm.rank).inc()
        tele_counter("repro_wire_bytes_total", rank=comm.rank).inc(wire)
        tele_counter("repro_logical_bytes_total", rank=comm.rank).inc(wire)
        live_add(comm.rank, "rounds", 1.0)
        live_add(comm.rank, "wire_bytes", float(wire))
        live_add(comm.rank, "logical_bytes", float(wire))
        if not report.clean:
            record_resilience_report(report)
        return recv


def osc_alltoallv(
    comm: Comm,
    send: Sequence[np.ndarray | None],
    *,
    topology: Topology | None = None,
    verify: bool = False,
    retry_policy: RetryPolicy | None = None,
    pool: BufferPool | None = None,
) -> list[np.ndarray]:
    """One-shot helper (no window caching): build, exchange, free."""
    op = OscAlltoallv(
        comm, topology=topology, verify=verify, retry_policy=retry_policy, pool=pool
    )
    try:
        return op(send)
    finally:
        op.free()
