"""One-sided (OSC) ring all-to-all — Algorithm 3 of the paper.

Every rank exposes a receive staging buffer through an RMA window; the
ring then replaces each two-sided send with an ``MPI_Win_put`` into the
destination's window at the offset reserved for this source.  Two fences
delimit the exchange epoch ("the global synchronization needed to ensure
all communication in the window are now completed at both the origin and
the target").

Window creation "is a collective operation and therefore has a high
cost.  However, when the all-to-all is performed multiple times on the
same memory fragment, it is possible to cache this window" — hence the
class form: one :class:`OscAlltoallv` instance caches its window across
calls and only re-creates it (collectively, deterministically on all
ranks) when the exchanged sizes change.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CommunicatorError
from repro.machine.topology import Topology
from repro.runtime.base import Comm
from repro.runtime.window import Window

__all__ = ["OscAlltoallv", "osc_alltoallv"]


class OscAlltoallv:
    """Reusable one-sided ring all-to-all with a cached window.

    Parameters
    ----------
    comm:
        Runtime communicator (all ranks construct collectively).
    topology:
        Optional machine topology enabling the node-aware ring
        permutation (Section V).
    """

    def __init__(self, comm: Comm, *, topology: Topology | None = None) -> None:
        if topology is not None and topology.nranks != comm.size:
            raise CommunicatorError("topology size does not match communicator size")
        self.comm = comm
        self.topology = topology
        self._win: Window | None = None
        self._win_capacity = -1
        self._cached_sizes: tuple[tuple[int, ...], ...] | None = None

    # -- window management ------------------------------------------------------

    def _ensure_window(self, all_sizes: np.ndarray) -> tuple[Window, np.ndarray]:
        """(Re)create the cached window when the size matrix changed.

        ``all_sizes[s, d]`` = bytes rank ``s`` sends to rank ``d``.  The
        decision is a pure function of ``all_sizes`` (identical on every
        rank), keeping creation collective.
        """
        key = tuple(map(tuple, all_sizes.tolist()))
        my_total = int(all_sizes[:, self.comm.rank].sum())
        if self._win is None or self._cached_sizes != key or self._win_capacity < my_total:
            if self._win is not None:
                self._win.free()
            self._win = self.comm.win_create(my_total)
            self._win_capacity = my_total
            self._cached_sizes = key
        # Receive offsets: source s lands at sum of earlier sources' sizes.
        offsets = np.concatenate([[0], np.cumsum(all_sizes[:, self.comm.rank])[:-1]])
        return self._win, offsets.astype(np.int64)

    def free(self) -> None:
        """Collectively release the cached window (if any)."""
        if self._win is not None:
            self._win.free()
            self._win = None
            self._win_capacity = -1
            self._cached_sizes = None

    # -- the exchange -------------------------------------------------------------

    def __call__(self, send: Sequence[np.ndarray | None]) -> list[np.ndarray]:
        """Exchange ``send[d]`` → rank ``d``; returns per-source uint8 chunks.

        The window transports raw bytes, so receives are returned as
        ``uint8`` arrays; callers re-view them (the FFT layer exchanges
        packed byte streams anyway).
        """
        comm, p = self.comm, self.comm.size
        if len(send) != p:
            raise CommunicatorError(f"send list has {len(send)} entries for {p} ranks")
        chunks = [
            np.zeros(0, dtype=np.uint8)
            if c is None
            else np.ascontiguousarray(c).view(np.uint8).reshape(-1)
            for c in send
        ]
        my_sizes = np.array([c.size for c in chunks], dtype=np.int64)
        all_sizes = np.array(comm.allgather(my_sizes.tolist()), dtype=np.int64)

        win, offsets = self._ensure_window(all_sizes)

        from repro.collectives.pairwise import ring_peers

        win.fence()  # open epoch — "synchronization phase to make sure all processes are ready"
        for step in range(p):
            dest, _ = ring_peers(comm.rank, step, p, self.topology)
            data = chunks[dest]
            if data.size:
                # where my bytes live in dest's window:
                offset = int(all_sizes[: comm.rank, dest].sum())
                win.put(data, dest, offset=offset)
        win.fence()  # close epoch — all puts complete everywhere

        local = win.local_view()
        recv: list[np.ndarray] = []
        for s in range(p):
            size = int(all_sizes[s, comm.rank])
            recv.append(local[int(offsets[s]) : int(offsets[s]) + size].copy())
        return recv


def osc_alltoallv(
    comm: Comm,
    send: Sequence[np.ndarray | None],
    *,
    topology: Topology | None = None,
) -> list[np.ndarray]:
    """One-shot helper (no window caching): build, exchange, free."""
    op = OscAlltoallv(comm, topology=topology)
    try:
        return op(send)
    finally:
        op.free()
