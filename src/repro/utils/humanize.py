"""Human-readable formatting of byte counts, rates and durations."""

from __future__ import annotations

__all__ = ["format_bytes", "format_rate", "format_time"]

_BYTE_UNITS = ["B", "KB", "MB", "GB", "TB", "PB"]


def format_bytes(n: float) -> str:
    """Format a byte count with a binary-ish decimal unit (1 KB = 1e3 B).

    The paper quotes network numbers in decimal units (25 GB/s links,
    80 KB messages), so we follow the same convention.

    >>> format_bytes(80_000)
    '80.0 KB'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit in _BYTE_UNITS:
        if n < 1000.0 or unit == _BYTE_UNITS[-1]:
            return f"{sign}{n:.1f} {unit}"
        n /= 1000.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Format a bandwidth, e.g. ``format_rate(25e9) == '25.0 GB/s'``."""
    return format_bytes(bytes_per_second) + "/s"


def format_time(seconds: float) -> str:
    """Format a duration with an adaptive unit (s, ms, us, ns).

    >>> format_time(3.2e-6)
    '3.200 us'
    """
    s = float(seconds)
    if s != s:  # NaN
        return "nan"
    a = abs(s)
    if a >= 1.0 or a == 0.0:
        return f"{s:.3f} s"
    if a >= 1e-3:
        return f"{s * 1e3:.3f} ms"
    if a >= 1e-6:
        return f"{s * 1e6:.3f} us"
    return f"{s * 1e9:.3f} ns"
