"""Small shared helpers (no heavy dependencies, no package-internal imports)."""

from repro.utils.arrays import no_alias_copy
from repro.utils.humanize import format_bytes, format_rate, format_time
from repro.utils.primes import is_pow2, next_pow2, prime_factors

__all__ = [
    "format_bytes",
    "format_rate",
    "format_time",
    "no_alias_copy",
    "prime_factors",
    "is_pow2",
    "next_pow2",
]
