"""Integer factorisation helpers.

Used by the round-off bound of Gentleman & Sande (the FFT error bound is
expressed in terms of the prime factors of the transform length, see
Section III of the paper) and by the process-grid factoriser.
"""

from __future__ import annotations

__all__ = ["prime_factors", "is_pow2", "next_pow2"]


def prime_factors(n: int) -> list[int]:
    """Return the prime factorisation of ``n`` (with multiplicity), sorted.

    >>> prime_factors(360)
    [2, 2, 2, 3, 3, 5]
    """
    if n < 1:
        raise ValueError(f"prime_factors requires n >= 1, got {n}")
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        out.append(n)
    return out


def is_pow2(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def next_pow2(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"next_pow2 requires n >= 1, got {n}")
    return 1 << (n - 1).bit_length()
