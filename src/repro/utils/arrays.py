"""Array helpers shared by the transports (no package-internal imports)."""

from __future__ import annotations

import numpy as np

__all__ = ["no_alias_copy"]


def no_alias_copy(data: np.ndarray | None) -> np.ndarray:
    """A contiguous array equal to ``data`` that never aliases it.

    The self-block of an all-to-all must be detached from the caller's
    send buffer (MPI semantics: the send buffer is reusable the moment
    the call returns).  ``np.ascontiguousarray(x).copy()`` does that but
    copies *twice* when ``x`` is non-contiguous — ``ascontiguousarray``
    already produced a fresh buffer, and ``.copy()`` duplicates it
    again.  This helper copies exactly once either way.

    ``None`` means "no data" and yields a fresh empty uint8 array.
    """
    if data is None:
        return np.zeros(0, dtype=np.uint8)
    out = np.ascontiguousarray(data)
    if np.shares_memory(out, data):
        out = out.copy()
    return out
