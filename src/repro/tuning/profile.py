"""Versioned tuning profiles: the persisted output of the autotuner.

A profile maps a ``(machine, rank count, geometry)`` key to the exchange
configuration the measured sweep found fastest — codec, pipeline depth
and flat-vs-two-level variant.  :class:`~repro.fft.plan.Fft3d` and
:meth:`~repro.fft.reshape.ReshapePlan.run_spmd` load entries by key, and
the chosen key is stamped on the exchange spans (attr ``tuned``) so the
perf regression gate can attribute a trajectory change to a tuning
change rather than a code change.

The JSON schema is versioned (:data:`PROFILE_SCHEMA`); loading a file
with a different schema string raises :class:`~repro.errors.TuningError`
instead of silently misreading stale profiles.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field

from repro.compression.base import Codec, IdentityCodec
from repro.compression.lossless import ShuffleZlibCodec
from repro.compression.mantissa import MantissaTrimCodec
from repro.compression.truncation import CastCodec
from repro.compression.zfp_like import ZfpLikeCodec
from repro.errors import TuningError

__all__ = ["PROFILE_SCHEMA", "VARIANTS", "TuningEntry", "TuningProfile", "codec_from_name"]

PROFILE_SCHEMA = "repro-tuning-profile-v1"

#: Exchange variants a profile may select.
VARIANTS = ("flat", "two-level")


def codec_from_name(name: str) -> Codec:
    """Rebuild a codec from its :attr:`~repro.compression.base.Codec.name`.

    Codec names are self-describing (``trim_m20``, ``cast_fp16_scaled``,
    ``zlib1_shuffle``, ``zfp_tol1.0e-06`` …), so a profile only persists
    the string and this inverts it.
    """
    if name == "identity":
        return IdentityCodec()
    m = re.fullmatch(r"zlib(\d)(_shuffle)?", name)
    if m:
        return ShuffleZlibCodec(level=int(m.group(1)), shuffle=bool(m.group(2)))
    m = re.fullmatch(r"trim_m(\d+)", name)
    if m:
        return MantissaTrimCodec(int(m.group(1)))
    m = re.fullmatch(r"cast_(fp16|fp32|bf16)(_scaled)?", name)
    if m:
        return CastCodec(m.group(1), scaled=bool(m.group(2)))
    m = re.fullmatch(r"zfp_rate([0-9.]+)", name)
    if m:
        return ZfpLikeCodec(rate=float(m.group(1)))
    m = re.fullmatch(r"zfp_tol([0-9.eE+-]+)", name)
    if m:
        return ZfpLikeCodec(tolerance=float(m.group(1)))
    raise TuningError(f"tuning profile names unknown codec {name!r}")


@dataclass(frozen=True)
class TuningEntry:
    """The winning exchange configuration for one profile key."""

    codec: str  # codec name, invertible via codec_from_name()
    pipeline_chunks: int
    variant: str  # "flat" | "two-level"
    measured_s: float  # median wall time of the winning candidate
    swept: int = 0  # how many candidates the sweep compared

    def __post_init__(self) -> None:
        if self.variant not in VARIANTS:
            raise TuningError(f"unknown exchange variant {self.variant!r}")
        if self.pipeline_chunks < 1:
            raise TuningError(f"pipeline_chunks must be >= 1, got {self.pipeline_chunks}")
        codec_from_name(self.codec)  # validates eagerly

    def make_codec(self) -> Codec:
        return codec_from_name(self.codec)


@dataclass
class TuningProfile:
    """A machine's tuning table: profile key → :class:`TuningEntry`."""

    machine: str
    entries: dict[str, TuningEntry] = field(default_factory=dict)
    schema: str = PROFILE_SCHEMA

    # -- keys ---------------------------------------------------------------------

    @staticmethod
    def key(machine: str, nranks: int, shape: tuple[int, ...]) -> str:
        return f"{machine}/p{int(nranks)}/" + "x".join(str(int(n)) for n in shape)

    def record(self, nranks: int, shape: tuple[int, ...], entry: TuningEntry) -> str:
        """Store ``entry`` under this profile's machine; returns the key."""
        k = self.key(self.machine, nranks, shape)
        self.entries[k] = entry
        return k

    def lookup(
        self, nranks: int, shape: tuple[int, ...], *, machine: str | None = None
    ) -> TuningEntry | None:
        """The entry for ``(machine, nranks, shape)``; ``None`` when absent.

        ``machine`` defaults to the profile's own machine name — pass an
        explicit name to require a match against a specific topology.
        """
        return self.entries.get(self.key(machine or self.machine, nranks, shape))

    # -- (de)serialisation ---------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": self.schema,
            "machine": self.machine,
            "entries": {k: asdict(e) for k, e in sorted(self.entries.items())},
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "TuningProfile":
        if not isinstance(payload, dict):
            raise TuningError("tuning profile payload must be a JSON object")
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA:
            raise TuningError(
                f"tuning profile schema {schema!r} is not {PROFILE_SCHEMA!r} "
                f"(stale or foreign file)"
            )
        machine = payload.get("machine")
        if not isinstance(machine, str) or not machine:
            raise TuningError("tuning profile is missing its machine name")
        raw = payload.get("entries", {})
        if not isinstance(raw, dict):
            raise TuningError("tuning profile entries must be an object")
        entries: dict[str, TuningEntry] = {}
        for k, e in raw.items():
            try:
                entries[k] = TuningEntry(
                    codec=e["codec"],
                    pipeline_chunks=int(e["pipeline_chunks"]),
                    variant=e["variant"],
                    measured_s=float(e["measured_s"]),
                    swept=int(e.get("swept", 0)),
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise TuningError(f"malformed tuning entry for key {k!r}: {exc}") from exc
        return cls(machine=machine, entries=entries, schema=schema)

    def save(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "TuningProfile":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise TuningError(f"cannot read tuning profile {path}: {exc}") from exc
        return cls.from_payload(payload)
