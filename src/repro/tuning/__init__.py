"""Exchange tuning: staging-buffer pool, tuning profiles and the autotuner.

Only the pool and the profile schema are imported eagerly — the
collectives import :class:`BufferPool` while the autotuner imports the
FFT planner (which imports the collectives), so pulling
:mod:`repro.tuning.autotune` in here would close an import cycle.
Import it explicitly::

    from repro.tuning.autotune import tune
"""

from repro.tuning.pool import BufferPool
from repro.tuning.profile import (
    PROFILE_SCHEMA,
    VARIANTS,
    TuningEntry,
    TuningProfile,
    codec_from_name,
)

__all__ = [
    "BufferPool",
    "PROFILE_SCHEMA",
    "VARIANTS",
    "TuningEntry",
    "TuningProfile",
    "codec_from_name",
]
