"""``python -m repro tune`` — run the exchange sweep and persist a profile.

Writes ``TUNING_<name>.json`` under ``--out``, then immediately reloads
the file and checks that the payload round-trips bit-for-bit (schema
validation included) — a malformed profile should fail in the tuning
job, not in the first production run that loads it.
"""

from __future__ import annotations

import json
import os

from repro.errors import TuningError
from repro.tuning.profile import TuningProfile

__all__ = ["run_tune_cli"]


def run_tune_cli(
    *,
    n: int,
    nranks: int,
    machine: str,
    repeats: int,
    iters: int,
    e_tol: float | None,
    name: str,
    out: str,
    seed: int,
    timeout: float = 120.0,
    runtime: str = "thread",
) -> int:
    # Imported here, not at module top: autotune pulls in the FFT layer
    # (see the cycle note in repro.tuning.__init__).
    from repro.tuning.autotune import tune

    shape = (n, n, n)
    profile, key, results = tune(
        shape,
        nranks,
        machine=machine,
        repeats=repeats,
        iters=iters,
        e_tol=e_tol,
        seed=seed,
        timeout=timeout,
        runtime=runtime,
    )
    path = os.path.join(out, f"TUNING_{name}.json")
    profile.save(path)

    # Round-trip check: the saved artefact must reload to the same payload.
    reloaded = TuningProfile.load(path)
    if reloaded.to_payload() != profile.to_payload():
        raise TuningError(f"tuning profile {path} did not round-trip")

    best = results[0]
    lines = [
        f"=== exchange autotune: {shape} on {nranks} ranks "
        f"({profile.machine}, runtime {runtime}) ===",
        f"swept {len(results)} candidates, {repeats} repeats x {iters} iters each",
        "",
        f"{'codec':<16} {'chunks':>6} {'variant':<10} {'median':>10}",
    ]
    for r in results:
        marker = "  <-- winner" if r is best else ""
        lines.append(
            f"{r.candidate.codec:<16} {r.candidate.pipeline_chunks:>6} "
            f"{r.candidate.variant:<10} {r.median_s * 1e3:>8.2f}ms{marker}"
        )
    lines += [
        "",
        f"profile key: {key}",
        f"wrote {path} ({json.dumps(reloaded.entries[key].__dict__)})",
        "round-trip: OK",
    ]
    print("\n".join(lines))
    return 0
