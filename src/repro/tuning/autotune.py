"""Measured exchange autotuner: sweep configurations, persist the winner.

Analytic models (:mod:`repro.netsim`) predict *which* exchange should
win, but the actual crossover between codecs, pipeline depths and the
flat vs. two-level schedule depends on the machine the code really runs
on.  The autotuner settles it empirically: it executes the first
reshape of the target FFT geometry (bricks → x-pencils, the exchange
whose pattern dominates Algorithm 1) on the thread runtime for every
candidate ``(codec, pipeline_chunks, variant)`` triple, timing the
steady state with a warm window and a warm buffer pool, and records the
fastest candidate in a versioned
:class:`~repro.tuning.profile.TuningProfile` keyed by
``(machine, rank count, geometry)``.

Timing discipline mirrors the PR4 perf harness: per repeat, every rank
times its own inner loop with ``perf_counter`` and the repeat's cost is
the **max over ranks** (a collective is as slow as its slowest rank);
the candidate's score is the **median over repeats**.  The warm-up
iteration that creates the window and fills the pool is excluded.

This module imports the FFT layer, which imports the collectives, which
import :mod:`repro.tuning.pool` — so it must never be imported from
``repro.tuning.__init__`` (see the note there).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

import numpy as np

from repro.collectives.compressed import CompressedOscAlltoallv
from repro.collectives.twolevel import TwoLevelCompressedAlltoallv
from repro.compression.selection import codec_for_tolerance
from repro.errors import TuningError
from repro.fft.decomposition import brick_decomposition, pencil_decomposition
from repro.fft.reshape import ReshapePlan
from repro.machine.spec import MachineSpec, laptop_spec, summit_spec
from repro.machine.topology import Topology
from repro.tuning.pool import BufferPool
from repro.tuning.profile import TuningEntry, TuningProfile, codec_from_name

__all__ = ["Candidate", "SweepResult", "resolve_machine", "sweep", "tune"]

#: Codec names swept by default — the no-compression baseline, the
#: lossless fallback and the cheapest native lossy cast.
DEFAULT_CODECS = ("identity", "zlib1_shuffle", "cast_fp32")
DEFAULT_CHUNKS = (1, 2, 4)

_MACHINES = {"laptop": laptop_spec, "summit": summit_spec}


@dataclass(frozen=True)
class Candidate:
    """One point of the sweep grid."""

    codec: str
    pipeline_chunks: int
    variant: str


@dataclass
class SweepResult:
    """Measured cost of one candidate."""

    candidate: Candidate
    median_s: float
    samples: list[float] = field(default_factory=list)

    def as_payload(self) -> dict:
        return {
            "codec": self.candidate.codec,
            "pipeline_chunks": self.candidate.pipeline_chunks,
            "variant": self.candidate.variant,
            "median_s": self.median_s,
            "samples": list(self.samples),
        }


def resolve_machine(machine: MachineSpec | str | None) -> MachineSpec:
    """Accept a spec, a preset name (``laptop``/``summit``) or ``None``."""
    if machine is None:
        return laptop_spec()
    if isinstance(machine, MachineSpec):
        return machine
    try:
        return _MACHINES[machine]()
    except KeyError:
        raise TuningError(
            f"unknown machine preset {machine!r} (have {sorted(_MACHINES)})"
        ) from None


def _topology_for(machine: MachineSpec, nranks: int) -> Topology | None:
    """A topology when the ranks pack whole nodes; ``None`` otherwise."""
    if nranks % machine.gpus_per_node:
        return None
    try:
        return Topology(machine, nranks)
    except Exception:
        return None


def _measure_candidate(
    cand: Candidate,
    plan: ReshapePlan,
    topology: Topology | None,
    nranks: int,
    *,
    iters: int,
    repeats: int,
    seed: int,
    timeout: float,
    runtime: str = "thread",
) -> SweepResult:
    """Median-over-repeats, max-over-ranks steady-state reshape time."""
    from repro.runtime import make_world

    samples: list[float] = []
    for rep in range(repeats):
        def kernel(comm):
            codec = codec_from_name(cand.codec)
            rng = np.random.default_rng(seed * 10_000 + rep * 100 + comm.rank)
            box = plan.src.box_of(comm.rank)
            local = (
                rng.standard_normal(box.shape) + 1j * rng.standard_normal(box.shape)
            ).astype(np.complex128)
            pool = BufferPool()
            cls = (
                TwoLevelCompressedAlltoallv
                if cand.variant == "two-level"
                else CompressedOscAlltoallv
            )
            op = cls(
                comm,
                codec,
                topology=topology,
                pipeline_chunks=cand.pipeline_chunks,
                pool=pool,
            )
            try:
                # Warm-up: creates the cached window, fills the pool.
                plan.run_spmd(comm, local, alltoall=op, pool=pool)
                comm.barrier()
                t0 = time.perf_counter()
                for _ in range(iters):
                    plan.run_spmd(comm, local, alltoall=op, pool=pool)
                elapsed = time.perf_counter() - t0
            finally:
                op.free()
            return elapsed / iters
        per_rank = make_world(runtime, nranks, timeout=timeout).run(kernel)
        samples.append(max(float(t) for t in per_rank))
    return SweepResult(cand, statistics.median(samples), samples)


def sweep(
    shape: tuple[int, int, int],
    nranks: int,
    *,
    machine: MachineSpec | str | None = None,
    codecs: tuple[str, ...] | None = None,
    chunk_candidates: tuple[int, ...] = DEFAULT_CHUNKS,
    variants: tuple[str, ...] | None = None,
    e_tol: float | None = None,
    repeats: int = 3,
    iters: int = 2,
    seed: int = 0,
    timeout: float = 120.0,
    runtime: str = "thread",
) -> tuple[list[SweepResult], MachineSpec]:
    """Measure every candidate; returns (results sorted fastest-first, spec).

    ``e_tol`` replaces the default lossy candidate with the cheapest
    codec honouring the tolerance, so the sweep never proposes a codec
    the accuracy budget forbids.
    """
    spec = resolve_machine(machine)
    topology = _topology_for(spec, nranks)
    if codecs is None:
        codecs = DEFAULT_CODECS
        if e_tol is not None:
            codecs = tuple(
                c for c in codecs if codec_from_name(c).lossless
            ) + (codec_for_tolerance(e_tol).name,)
    if variants is None:
        variants = (
            ("flat", "two-level")
            if topology is not None and topology.nnodes > 1
            else ("flat",)
        )
    # dict.fromkeys: dedupe while keeping the caller's order.
    grid = [
        Candidate(c, k, v)
        for c in dict.fromkeys(codecs)
        for k in dict.fromkeys(chunk_candidates)
        for v in dict.fromkeys(variants)
    ]
    if not grid:
        raise TuningError("empty sweep grid (no codecs, chunks or variants)")
    plan = ReshapePlan(
        brick_decomposition(shape, nranks), pencil_decomposition(shape, nranks, 0)
    )
    results = [
        _measure_candidate(
            cand, plan, topology, nranks,
            iters=iters, repeats=repeats, seed=seed, timeout=timeout,
            runtime=runtime,
        )
        for cand in grid
    ]
    results.sort(key=lambda r: r.median_s)
    return results, spec


def tune(
    shape: tuple[int, int, int],
    nranks: int,
    *,
    machine: MachineSpec | str | None = None,
    profile: TuningProfile | None = None,
    **sweep_kwargs,
) -> tuple[TuningProfile, str, list[SweepResult]]:
    """Sweep and record the winner; returns (profile, key, all results).

    Appends to ``profile`` when given (one profile file can cover many
    geometries of one machine) or starts a fresh one for the machine.
    """
    shape = tuple(int(n) for n in shape)
    results, spec = sweep(shape, nranks, machine=machine, **sweep_kwargs)
    best = results[0]
    if profile is None:
        profile = TuningProfile(machine=spec.name)
    elif profile.machine != spec.name:
        raise TuningError(
            f"profile is for machine {profile.machine!r}, sweep ran on {spec.name!r}"
        )
    entry = TuningEntry(
        codec=best.candidate.codec,
        pipeline_chunks=best.candidate.pipeline_chunks,
        variant=best.candidate.variant,
        measured_s=best.median_s,
        swept=len(results),
    )
    key = profile.record(nranks, shape, entry)
    return profile, key, results
