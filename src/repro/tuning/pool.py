"""Size-class keyed staging-buffer pool for the exchange hot path.

Every compressed exchange used to allocate its staging frames, pack
scratch and receive copies from scratch; on a GPU those would be
``cudaMalloc``/``cudaFree`` pairs on the critical path — exactly what
gZCCL-style collectives avoid with a reusable staging arena.  A
:class:`BufferPool` keeps freed buffers binned by power-of-two size
class, so a steady-state exchange whose message sizes repeat (the FFT
reshape pattern is fixed per plan) performs **zero** allocations after
the first warm-up call.

Contract
--------
* :meth:`BufferPool.acquire` returns a ``uint8`` view of exactly the
  requested length over a pooled power-of-two arena;
* :meth:`BufferPool.release` hands a buffer (or any view derived from
  it — the arena is found by walking ``.base``) back for reuse.
  Releasing an array the pool does not own is a silent no-op, so
  integration code can release everything it *might* have pooled
  without tracking provenance; double releases are likewise ignored
  (the arena is only reclaimed once).
* Hit/miss tallies are kept on the pool **and** exported through the
  :mod:`repro.trace` counters ``pool_hits`` / ``pool_misses`` (per-rank
  when the calling thread is rank-bound), so the perf layer can see
  allocation behaviour next to the spans it affects.

The pool is thread-safe (one lock around the free lists); the intended
deployment is still one pool per rank — sharing one across SPMD rank
threads is correct but serialises acquires.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import TuningError
from repro.telemetry.metrics import counter as tele_counter
from repro.telemetry.metrics import gauge as tele_gauge
from repro.trace import incr as trace_incr
from repro.utils.primes import next_pow2

__all__ = ["BufferPool"]

#: Shared zero-length buffer: zero-size acquires allocate nothing and
#: are not counted (there is nothing to reuse).
_EMPTY = np.zeros(0, dtype=np.uint8)


class BufferPool:
    """Reusable staging buffers, binned by power-of-two size class.

    Parameters
    ----------
    max_per_class:
        Free buffers retained per size class; releases beyond this are
        dropped (bounds retained memory to ``max_per_class`` times the
        working-set footprint).
    name:
        Label used in diagnostics.
    """

    def __init__(self, *, max_per_class: int = 8, name: str = "pool") -> None:
        if max_per_class < 1:
            raise TuningError(f"max_per_class must be >= 1, got {max_per_class}")
        self.name = name
        self.max_per_class = int(max_per_class)
        self._lock = threading.Lock()
        self._free: dict[int, list[np.ndarray]] = {}
        self._out: dict[int, np.ndarray] = {}  # id(arena) -> arena, while loaned out
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.dropped = 0

    # -- acquire / release --------------------------------------------------------

    def acquire(self, nbytes: int) -> np.ndarray:
        """A ``uint8`` buffer of exactly ``nbytes`` (pooled arena view)."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise TuningError(f"cannot acquire {nbytes} bytes")
        if nbytes == 0:
            return _EMPTY
        size_class = next_pow2(nbytes)
        with self._lock:
            stack = self._free.get(size_class)
            if stack:
                arena = stack.pop()
                self.hits += 1
                hit = True
            else:
                arena = np.empty(size_class, dtype=np.uint8)
                self.misses += 1
                hit = False
            self._out[id(arena)] = arena
        trace_incr("pool_hits" if hit else "pool_misses")
        self._observe(hit)
        return arena[:nbytes]

    def _observe(self, hit: bool) -> None:
        """Mirror one acquire into the telemetry registry (cheap, best-effort)."""
        if hit:
            tele_counter("repro_pool_hits_total", pool=self.name).inc()
        else:
            tele_counter("repro_pool_misses_total", pool=self.name).inc()
        total = self.hits + self.misses
        if total:
            tele_gauge("repro_pool_hit_rate", pool=self.name).set(self.hits / total)

    def acquire_array(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A typed scratch array of ``shape``/``dtype`` over a pooled arena."""
        dt = np.dtype(dtype)
        shape = tuple(int(n) for n in shape)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        return self.acquire(nbytes).view(dt).reshape(shape)

    def release(self, arr) -> bool:
        """Return ``arr`` (or any view of it) to the pool.

        Walks ``arr.base`` to its owning arena; arrays the pool never
        handed out — including zero-size buffers, foreign allocations
        and second releases of the same arena — are ignored and
        ``False`` is returned.
        """
        root = arr
        while isinstance(root, np.ndarray) and root.base is not None:
            root = root.base
        if not isinstance(root, np.ndarray):
            return False
        with self._lock:
            arena = self._out.pop(id(root), None)
            if arena is None or arena is not root:
                if arena is not None:  # id collision with a foreign object
                    self._out[id(arena)] = arena
                return False
            self.releases += 1
            stack = self._free.setdefault(arena.size, [])
            if len(stack) < self.max_per_class:
                stack.append(arena)
            else:
                self.dropped += 1
        return True

    # -- introspection ------------------------------------------------------------

    @property
    def active(self) -> int:
        """Buffers currently loaned out."""
        with self._lock:
            return len(self._out)

    @property
    def retained_bytes(self) -> int:
        """Bytes sitting in the free lists, ready for reuse."""
        with self._lock:
            return sum(size * len(stack) for size, stack in self._free.items())

    def counters(self) -> dict[str, int]:
        """Snapshot of the pool's tallies (for tests and reports)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "dropped": self.dropped,
            "active": self.active,
            "retained_bytes": self.retained_bytes,
        }

    def clear(self) -> None:
        """Drop all retained free buffers (loaned-out buffers unaffected)."""
        with self._lock:
            self._free.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BufferPool(name={self.name!r}, hits={self.hits}, misses={self.misses}, "
            f"active={self.active}, retained={self.retained_bytes}B)"
        )
