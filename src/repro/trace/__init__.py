"""repro.trace — per-rank tracing, metrics and exporters.

The always-available observability layer: nestable spans with the
paper's time-decomposition taxonomy (pack / compress / put / fence /
decompress / unpack / local_fft / retry), typed counters (logical and
wire bytes, messages, retries, degradations), Chrome ``trace_event``
export with one lane per rank, aggregated text summaries and the
``BENCH_*.json`` emitter.  See DESIGN.md §7.
"""

from repro.trace.bench import BENCH_SCHEMA, bench_payload, write_bench_json
from repro.trace.core import (
    COUNTER_KINDS,
    SPAN_KINDS,
    InstantEvent,
    SpanEvent,
    Tracer,
    bind_rank,
    get_tracer,
    incr,
    install,
    instant,
    record_report,
    span,
    tracing,
    uninstall,
)
from repro.trace.export import (
    chrome_trace,
    span_aggregates,
    summarize,
    write_chrome_trace,
)

__all__ = [
    "SPAN_KINDS",
    "COUNTER_KINDS",
    "SpanEvent",
    "InstantEvent",
    "Tracer",
    "get_tracer",
    "install",
    "uninstall",
    "tracing",
    "span",
    "instant",
    "incr",
    "bind_rank",
    "record_report",
    "chrome_trace",
    "write_chrome_trace",
    "summarize",
    "span_aggregates",
    "BENCH_SCHEMA",
    "bench_payload",
    "write_bench_json",
]
