"""Trace exporters: Chrome ``trace_event`` JSON and text summaries.

The Chrome format (one lane per rank, load in ``chrome://tracing`` or
https://ui.perfetto.dev) is the visual artefact; :func:`summarize` is
the terminal artefact — per-span-kind percentiles, per-rank totals and
the typed counters, including the achieved compression rate derived
from the logical/wire byte counters.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.trace.core import InstantEvent, SpanEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "summarize",
    "span_aggregates",
    "spool_payload",
    "write_spool",
    "read_spool",
    "absorb_spool",
]


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars so ``json.dump`` never chokes on attrs."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    return value


def _args(attrs: dict[str, Any]) -> dict[str, Any]:
    return {k: _jsonable(v) for k, v in attrs.items()}


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Render the tracer's stream as a Chrome ``trace_event`` object.

    One process (pid 0), one thread lane per rank (tid = rank); spans
    are complete events (``ph="X"``), folded resilience events are
    thread-scoped instants (``ph="i"``), and typed counters (wire /
    logical bytes, retries, degradations, …) are counter events
    (``ph="C"``) — one lane per counter name, one series per rank, each
    sample carrying the running total at that instant.  Timestamps are
    microseconds, as the format requires.
    """
    events: list[dict[str, Any]] = []
    for rank in tracer.ranks():
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_name",
                "args": {"name": f"rank {rank}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": 0,
                "tid": rank,
                "name": "thread_sort_index",
                "args": {"sort_index": rank},
            }
        )
    for s in tracer.span_events():
        events.append(
            {
                "name": s.kind,
                "cat": "repro",
                "ph": "X",
                "pid": 0,
                "tid": s.rank,
                "ts": s.t0_ns / 1000.0,
                "dur": s.duration_ns / 1000.0,
                "args": _args(s.attrs),
            }
        )
    for i in tracer.instant_events():
        events.append(
            {
                "name": i.kind,
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": i.rank,
                "ts": i.ts_ns / 1000.0,
                "args": _args(i.attrs),
            }
        )
    # Counter lanes: replay the timestamped increments into running
    # totals so each sample is the cumulative value at that instant.
    running: dict[tuple[int, str], float] = {}
    for ts_ns, rank, name, delta in tracer.counter_samples():
        key = (rank, name)
        running[key] = running.get(key, 0) + delta
        events.append(
            {
                "name": name,
                "cat": "repro",
                "ph": "C",
                "pid": 0,
                "tid": rank,
                "ts": ts_ns / 1000.0,
                "args": {f"rank {rank}": _jsonable(running[key])},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(tracer), fh)
    return path


def span_aggregates(tracer: Tracer) -> dict[str, dict[str, float]]:
    """Per-span-kind aggregate timings (seconds): count/total/p50/p95/max.

    Works in both tracer modes: from retained :class:`SpanEvent` lists,
    or (under ``span_histograms``) from the streaming histograms, whose
    percentiles carry the histogram's bounded relative error.  An empty
    tracer yields an empty dict, never an exception.
    """
    if tracer.span_histograms_enabled:
        merged: dict[str, Any] = {}
        for (_, kind), hist in tracer.span_histograms().items():
            if kind in merged:
                merged[kind].merge(hist)
            else:
                acc = type(hist)(growth=hist.growth)
                acc.merge(hist)
                merged[kind] = acc
        return {
            kind: {
                "count": float(h.count),
                "total_s": h.total * 1e-9,
                "p50_s": h.percentile(50) * 1e-9,
                "p95_s": h.percentile(95) * 1e-9,
                "max_s": (h.max if h.count else 0.0) * 1e-9,
            }
            for kind, h in sorted(merged.items())
        }
    by_kind: dict[str, list[int]] = {}
    for s in tracer.span_events():
        by_kind.setdefault(s.kind, []).append(s.duration_ns)
    out: dict[str, dict[str, float]] = {}
    for kind, durs in sorted(by_kind.items()):
        arr = np.asarray(durs, dtype=np.float64) * 1e-9
        out[kind] = {
            "count": len(durs),
            "total_s": float(arr.sum()),
            "p50_s": float(np.percentile(arr, 50)),
            "p95_s": float(np.percentile(arr, 95)),
            "max_s": float(arr.max()),
        }
    return out


# -- cross-process spool files ---------------------------------------------------------
#
# The process runtime cannot share a Tracer across ranks (each rank is
# a forked child with its own copy), so every rank serializes its
# tracer to a JSON spool on exit and the parent absorbs all spools back
# into the installed tracer.  perf_counter_ns is machine-wide monotonic
# on Linux, so spooled timestamps land directly on the parent timeline.


def spool_payload(tracer: Tracer) -> dict[str, Any]:
    """JSON-safe dump of everything a tracer recorded."""
    return {
        "version": 1,
        "spans": [
            [s.kind, s.rank, s.t0_ns, s.t1_ns, s.depth, _args(s.attrs)]
            for s in tracer.span_events()
        ],
        "instants": [
            [i.kind, i.rank, i.ts_ns, _args(i.attrs)] for i in tracer.instant_events()
        ],
        # JSON keys must be strings; "rank:name" round-trips the tuple.
        "counters": {f"{r}:{name}": v for (r, name), v in tracer.counters().items()},
        "samples": [
            [ts, rank, name, _jsonable(delta)]
            for ts, rank, name, delta in tracer.counter_samples()
        ],
        "histograms": {
            f"{r}:{kind}": hist.to_dict()
            for (r, kind), hist in tracer.span_histograms().items()
        },
    }


def write_spool(tracer: Tracer, path: str) -> str:
    """Write a rank's spool file; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(spool_payload(tracer), fh)
    return path


def read_spool(path: str) -> dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def _split_key(key: str) -> tuple[int, str]:
    rank, _, name = key.partition(":")
    return int(rank), name


def absorb_spool(tracer: Tracer, path: str) -> None:
    """Merge one rank's spool file into ``tracer`` (see ``Tracer.absorb``)."""
    payload = read_spool(path)
    histograms: dict[tuple[int, str], Any] = {}
    if payload.get("histograms"):
        from repro.perf.histogram import LogHistogram

        histograms = {
            _split_key(key): LogHistogram.from_dict(dump)
            for key, dump in payload["histograms"].items()
        }
    tracer.absorb(
        spans=[
            SpanEvent(kind, rank, t0, t1, depth, attrs)
            for kind, rank, t0, t1, depth, attrs in payload.get("spans", ())
        ],
        instants=[
            InstantEvent(kind, rank, ts, attrs)
            for kind, rank, ts, attrs in payload.get("instants", ())
        ],
        counters={_split_key(key): v for key, v in payload.get("counters", {}).items()},
        samples=[tuple(s) for s in payload.get("samples", ())],
        histograms=histograms,
    )


def summarize(tracer: Tracer) -> str:
    """Aggregated text summary: span percentiles, rank totals, counters.

    Safe on an *empty* tracer (nothing recorded): prints an explicit
    "(no spans recorded)" report instead of raising.
    """
    lines: list[str] = []
    aggs = span_aggregates(tracer)
    if aggs:
        lines.append("span kind         count   total(ms)    p50(ms)    p95(ms)    max(ms)")
        for kind, a in aggs.items():
            lines.append(
                f"{kind:<16} {a['count']:>6.0f}  {a['total_s'] * 1e3:>10.3f} "
                f"{a['p50_s'] * 1e3:>10.3f} {a['p95_s'] * 1e3:>10.3f} {a['max_s'] * 1e3:>10.3f}"
            )
    else:
        lines.append("(no spans recorded)")

    # Per-rank wall time: sum of top-level (depth 0) spans only, so
    # nested children are not double-counted.
    per_rank: dict[int, int] = {}
    for s in tracer.span_events():
        if s.depth == 0:
            per_rank[s.rank] = per_rank.get(s.rank, 0) + s.duration_ns
    if per_rank:
        lines.append("")
        lines.append("rank    top-level span total(ms)")
        for rank in sorted(per_rank):
            lines.append(f"{rank:>4}    {per_rank[rank] * 1e-6:>10.3f}")

    counters = tracer.counters()
    names = sorted({name for _, name in counters})
    if names:
        lines.append("")
        lines.append("counter            total          per-rank")
        for name in names:
            ranked = {r: v for (r, n), v in counters.items() if n == name}
            total = sum(ranked.values())
            detail = ", ".join(f"{r}:{v:g}" for r, v in sorted(ranked.items()))
            lines.append(f"{name:<16} {total:>10g}    {detail}")
        logical = tracer.counter_total("logical_bytes")
        wire = tracer.counter_total("wire_bytes")
        if wire:
            lines.append(f"achieved compression rate: {logical / wire:.2f}x")
    return "\n".join(lines)
