"""Machine-readable benchmark emitter (``BENCH_*.json``).

Turns one traced run into a schema-stable JSON document — span
aggregates, typed counters per rank, achieved compression rate — so CI
can archive a performance trajectory across PRs and later perf work has
a baseline format to report through.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any

from repro.trace.core import Tracer
from repro.trace.export import span_aggregates

__all__ = ["BENCH_SCHEMA", "bench_payload", "write_bench_json"]

#: Schema identifier; bump when the payload layout changes.
BENCH_SCHEMA = "repro-bench-v1"


def bench_payload(
    tracer: Tracer, name: str, *, meta: dict[str, Any] | None = None
) -> dict[str, Any]:
    """Build the ``BENCH_*.json`` document for one traced run."""
    counters = tracer.counters()
    counter_names = sorted({n for _, n in counters})
    counter_doc: dict[str, Any] = {}
    for cname in counter_names:
        ranked = {str(r): v for (r, n), v in counters.items() if n == cname}
        counter_doc[cname] = {"total": sum(ranked.values()), "per_rank": ranked}
    logical = tracer.counter_total("logical_bytes")
    wire = tracer.counter_total("wire_bytes")
    return {
        "schema": BENCH_SCHEMA,
        "name": name,
        "unix_time": time.time(),
        "platform": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "meta": dict(meta or {}),
        "ranks": tracer.ranks(),
        "spans": span_aggregates(tracer),
        "counters": counter_doc,
        "achieved_rate": (logical / wire) if wire else 1.0,
    }


def write_bench_json(path: str, payload: dict[str, Any]) -> str:
    """Write a bench payload to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
