"""Traced demo cases behind ``python -m repro trace <case>``.

Runs a small-but-real workload on the thread runtime under an installed
:class:`~repro.trace.Tracer` and emits the three artefacts of the
observability layer:

* ``trace_<case>.json`` — Chrome ``trace_event`` stream, one lane per rank;
* ``BENCH_<name>.json`` — machine-readable aggregates for the perf trajectory;
* a text summary (stdout) with per-span percentiles and counter totals.

Cases:

* ``fft`` — heFFTe-style 3-D FFT, compressed OSC reshapes (Algorithm 1
  end to end: pack/compress/put/fence/decompress/unpack/local_fft);
* ``alltoall`` — one compressed OSC exchange (Algorithm 3 only).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.trace.bench import bench_payload, write_bench_json
from repro.trace.core import Tracer, install, uninstall
from repro.trace.export import summarize, write_chrome_trace

__all__ = ["run_trace_case", "TRACE_CASES"]

TRACE_CASES = ("fft", "alltoall")


def _traced_fft(
    nranks: int, n: int, e_tol: float, seed: int, runtime: str = "thread"
) -> tuple[int, int]:
    """Forward 3-D FFT on the chosen runtime; returns (wire, logical) bytes
    summed over every rank's :class:`~repro.fft.plan.FftStats`."""
    from repro.fft.plan import Fft3d, FftStats
    from repro.runtime import make_world

    plan = Fft3d((n, n, n), nranks, e_tol=e_tol)
    rng = np.random.default_rng(2022 + seed)
    x = rng.standard_normal((n, n, n)) + 1j * rng.standard_normal((n, n, n))
    locals_ = plan.scatter(x)

    def kernel(comm):
        stats = FftStats()
        plan.forward_spmd(comm, locals_[comm.rank], stats=stats)
        return stats

    per_rank = make_world(runtime, nranks).run(kernel)
    return (
        sum(s.wire_bytes for s in per_rank),
        sum(s.logical_bytes for s in per_rank),
    )


def _traced_alltoall(
    nranks: int, n: int, e_tol: float, seed: int, runtime: str = "thread"
) -> tuple[int, int]:
    """One compressed OSC exchange; returns (wire, logical) byte totals."""
    from repro.collectives.compressed import CompressedOscAlltoallv
    from repro.compression.selection import codec_for_tolerance
    from repro.runtime import make_world

    codec = codec_for_tolerance(e_tol)
    items = max(n, 2) ** 3 // nranks + 1

    def kernel(comm):
        rng = np.random.default_rng(100 + 1000 * seed + comm.rank)
        send = [rng.standard_normal(items) for _ in range(comm.size)]
        op = CompressedOscAlltoallv(comm, codec)
        try:
            op(send)
        finally:
            op.free()
        return op.last_stats

    per_rank = make_world(runtime, nranks).run(kernel)
    return (
        sum(s.wire_bytes for s in per_rank),
        sum(s.original_bytes for s in per_rank),
    )


def run_trace_case(
    case: str = "fft",
    *,
    nranks: int = 8,
    n: int = 16,
    e_tol: float = 1e-6,
    out_dir: str = ".",
    bench_name: str | None = None,
    seed: int = 0,
    span_histograms: bool = False,
    runtime: str = "thread",
) -> str:
    """Run one traced case and emit trace + bench artefacts.

    Returns the report text (also meant for stdout): artefact paths,
    the summary table, and the wire-byte consistency check between the
    tracer's counters and the collectives' own stats objects.  With
    ``span_histograms`` the tracer keeps bounded-memory percentile
    histograms instead of every span (the Chrome trace then carries no
    span lanes).
    """
    if case not in TRACE_CASES:
        raise SystemExit(f"unknown trace case {case!r}; pick one of {TRACE_CASES}")
    os.makedirs(out_dir, exist_ok=True)
    tracer = Tracer(span_histograms=span_histograms)
    install(tracer)
    try:
        runner = _traced_fft if case == "fft" else _traced_alltoall
        stats_wire, stats_logical = runner(nranks, n, e_tol, seed, runtime)
    finally:
        uninstall()

    traced_wire = int(tracer.counter_total("wire_bytes"))
    traced_logical = int(tracer.counter_total("logical_bytes"))
    consistent = traced_wire == stats_wire and traced_logical == stats_logical

    trace_path = write_chrome_trace(tracer, os.path.join(out_dir, f"trace_{case}.json"))
    name = bench_name or case
    bench_path = write_bench_json(
        os.path.join(out_dir, f"BENCH_{name}.json"),
        bench_payload(
            tracer,
            name,
            meta={
                "case": case,
                "nranks": nranks,
                "n": n,
                "e_tol": e_tol,
                "seed": seed,
                "span_histograms": span_histograms,
                "runtime": runtime,
                "stats_wire_bytes": stats_wire,
                "stats_logical_bytes": stats_logical,
                "counters_match_stats": consistent,
            },
        ),
    )

    # The always-on metrics registry observed the same run; export both
    # machine (JSON snapshot) and scrape (Prometheus text) forms.
    from repro.telemetry.metrics import get_registry

    registry = get_registry()
    metrics_path = os.path.join(out_dir, f"METRICS_{name}.json")
    with open(metrics_path, "w", encoding="utf-8") as fh:
        json.dump(registry.snapshot(), fh, indent=2, sort_keys=True)
    prom_path = os.path.join(out_dir, f"METRICS_{name}.prom")
    with open(prom_path, "w", encoding="utf-8") as fh:
        fh.write(registry.prometheus())

    lines = [
        f"=== traced {case}: {nranks} ranks, n={n}, e_tol={e_tol:g}, "
        f"runtime={runtime} ===",
        summarize(tracer),
        "",
        f"chrome trace: {trace_path}",
        f"bench json:   {bench_path}",
        f"metrics:      {metrics_path} / {prom_path}",
        f"wire bytes    tracer={traced_wire}  stats={stats_wire}  "
        f"{'OK' if consistent else 'MISMATCH'}",
    ]
    if not consistent:
        raise SystemExit(
            f"tracer/stats accounting mismatch: wire {traced_wire} vs {stats_wire}, "
            f"logical {traced_logical} vs {stats_logical}"
        )
    return "\n".join(lines)
