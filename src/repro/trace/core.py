"""Per-rank tracing and metrics: spans, instants and typed counters.

The measurement substrate every perf claim reports through.  Three
design constraints drive the shape of this module:

* **per-rank attribution** — every event carries the rank it happened
  on.  SPMD threads bind their rank once (``ThreadWorld.run`` does it
  automatically) and all spans/counters opened on that thread inherit
  it; the virtual executor, which runs every rank in one thread, passes
  ``rank=`` explicitly per event.
* **thread safety** — each thread appends to its own buffer (created
  lazily, registered under a lock); buffers are merged only at export
  time, so the hot path takes no locks.
* **zero overhead when disabled** — the module-level helpers
  (:func:`span`, :func:`incr`, …) short-circuit to shared no-op objects
  when no tracer is installed; instrumented code never needs an ``if``.

Usage, SPMD::

    with trace.tracing() as tracer:
        ThreadWorld(8).run(kernel)          # ranks auto-bound
    print(summarize(tracer))

Usage, explicit::

    tracer = Tracer()
    install(tracer)
    with trace.span("compress", rank=3, peer=5, bytes=4096):
        ...
    uninstall()
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

__all__ = [
    "SPAN_KINDS",
    "COUNTER_KINDS",
    "SpanEvent",
    "InstantEvent",
    "Tracer",
    "get_tracer",
    "install",
    "uninstall",
    "tracing",
    "span",
    "instant",
    "incr",
    "bind_rank",
    "record_report",
]

#: Span taxonomy.  The first eight are the paper's time-decomposition
#: stages (Alg. 1 / Alg. 3); the rest structure the stream.
SPAN_KINDS = (
    "pack",  # extract the contiguous chunk owed to one destination
    "compress",  # codec encode (incl. wire framing) for one destination
    "put",  # one-sided write into a remote window
    "fence",  # RMA epoch open/close synchronisation
    "decompress",  # frame walk + codec decode of one source block
    "unpack",  # insert a received chunk into the output block
    "local_fft",  # batched 1-D FFT phase on the local block
    "retry",  # recovery rounds (retransmission protocol)
    "sendrecv",  # one two-sided ring step (pairwise algorithm)
    "exchange",  # whole all-to-all of one reshape (parent span)
    "fft",  # one full Fft3d transform (outermost parent span)
    "checkpoint",  # CRC-framed pencil checkpoint save/load (resilience)
    "detect",  # failure detection window (last beacon -> declaration)
    "agree",  # fault-aware agreement on the survivor set (ULFM agree)
    "shrink",  # communicator rebuild over the survivors (ULFM shrink)
    "restart",  # checkpointed FFT resume on the shrunk communicator
)

#: Typed counters accumulated per (rank, name).
COUNTER_KINDS = (
    "messages",  # wire messages sent by this rank
    "logical_bytes",  # uncompressed payload volume sent
    "wire_bytes",  # bytes actually on the wire after compression
    "retries",  # recovery retries (from resilience reports)
    "degradations",  # codec ladder step-downs
    "retransmissions",  # blocks re-sent during recovery
    "pool_hits",  # staging-buffer acquisitions served from the pool
    "pool_misses",  # staging-buffer acquisitions that had to allocate
    "internode_messages",  # aggregated NIC-crossing messages (two-level exchange)
)


@dataclass
class SpanEvent:
    """One closed span: a named interval on one rank."""

    kind: str
    rank: int
    t0_ns: int
    t1_ns: int
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.t1_ns - self.t0_ns


@dataclass
class InstantEvent:
    """A point event (e.g. a folded resilience event)."""

    kind: str
    rank: int
    ts_ns: int
    attrs: dict[str, Any] = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ThreadBuffer:
    """Per-thread event storage; merged by the tracer at export time."""

    __slots__ = ("rank", "depth", "spans", "instants", "counters", "histograms", "samples")

    def __init__(self) -> None:
        self.rank = -1  # unbound until bind_rank()
        self.depth = 0
        self.spans: list[SpanEvent] = []
        self.instants: list[InstantEvent] = []
        self.counters: dict[tuple[int, str], float] = {}
        # span_histograms mode: (rank, kind) -> LogHistogram of duration_ns
        self.histograms: dict[tuple[int, str], Any] = {}
        # counter time series: (ts_ns, rank, name, delta) per incr()
        self.samples: list[tuple[int, int, str, float]] = []


class _Span:
    """Live span handle (context manager)."""

    __slots__ = ("_tracer", "_buf", "_kind", "_rank", "_attrs", "_t0", "_depth")

    def __init__(
        self, tracer: "Tracer", buf: _ThreadBuffer, kind: str, rank: int | None, attrs: dict
    ) -> None:
        self._tracer = tracer
        self._buf = buf
        self._kind = kind
        self._rank = rank
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        buf = self._buf
        self._depth = buf.depth
        buf.depth += 1
        self._t0 = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = self._tracer._clock()
        buf = self._buf
        buf.depth = self._depth
        rank = self._rank if self._rank is not None else buf.rank
        hist_factory = self._tracer._hist_factory
        if hist_factory is not None:
            # Bounded-memory mode: fold the duration into a streaming
            # histogram instead of retaining the span (attrs are dropped).
            key = (rank, self._kind)
            hist = buf.histograms.get(key)
            if hist is None:
                hist = buf.histograms[key] = hist_factory()
            hist.add(t1 - self._t0)
        else:
            buf.spans.append(SpanEvent(self._kind, rank, self._t0, t1, self._depth, self._attrs))
        return False


class Tracer:
    """Per-process trace collector; one instance per measured run.

    Parameters
    ----------
    enabled:
        ``False`` makes every recording method a no-op (the object can
        stay installed; useful for toggling without re-plumbing).
    clock:
        Nanosecond monotonic clock (overridable for deterministic tests).
    span_histograms:
        Bounded-memory mode for long runs: span durations are folded
        into per-(rank, kind) streaming :class:`~repro.perf.histogram.
        LogHistogram` objects instead of retaining every
        :class:`SpanEvent` (attrs dropped, counter time series off).
        ``span_aggregates``/``summarize``/``bench_payload`` transparently
        read the histograms; Chrome export has no spans to draw.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock=time.perf_counter_ns,
        span_histograms: bool = False,
    ) -> None:
        self.enabled = bool(enabled)
        self._clock = clock
        self._lock = threading.Lock()
        self._buffers: list[_ThreadBuffer] = []
        self._local = threading.local()
        self._hist_factory = None
        if span_histograms:
            # Lazy import: repro.perf depends on repro.trace at module
            # load; by construction time both are fully initialised.
            from repro.perf.histogram import LogHistogram

            self._hist_factory = LogHistogram

    @property
    def span_histograms_enabled(self) -> bool:
        return self._hist_factory is not None

    # -- hot path -----------------------------------------------------------------

    def _buf(self) -> _ThreadBuffer:
        buf = getattr(self._local, "buf", None)
        if buf is None:
            buf = _ThreadBuffer()
            self._local.buf = buf
            with self._lock:
                self._buffers.append(buf)
        return buf

    def bind_rank(self, rank: int) -> None:
        """Attribute this thread's subsequent events to ``rank``."""
        self._buf().rank = int(rank)

    def span(self, kind: str, *, rank: int | None = None, **attrs: Any):
        """Open a nestable span; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, self._buf(), kind, rank, attrs)

    def instant(self, kind: str, *, rank: int | None = None, **attrs: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        buf = self._buf()
        r = rank if rank is not None else buf.rank
        buf.instants.append(InstantEvent(kind, r, self._clock(), attrs))

    def record_span(
        self,
        kind: str,
        rank: int | None = None,
        *,
        duration_ns: int,
        **attrs: Any,
    ) -> None:
        """Append an already-closed span ending now, ``duration_ns`` long.

        For intervals whose start is only known in hindsight — e.g. the
        failure *detection window* (a victim's last beacon to the
        watchdog verdict), which no context manager could have wrapped.
        The end timestamp comes from this tracer's clock, so the span
        lines up with context-manager spans in the Chrome export.
        """
        if not self.enabled:
            return
        buf = self._buf()
        r = rank if rank is not None else buf.rank
        duration = max(0, int(duration_ns))
        if self._hist_factory is not None:
            key = (r, kind)
            hist = buf.histograms.get(key)
            if hist is None:
                hist = buf.histograms[key] = self._hist_factory()
            hist.add(duration)
        else:
            t1 = self._clock()
            buf.spans.append(SpanEvent(kind, r, t1 - duration, t1, buf.depth, attrs))

    def incr(self, name: str, value: float = 1, *, rank: int | None = None) -> None:
        """Add ``value`` to counter ``name`` on ``rank``.

        Outside histogram mode every increment is also timestamped, so
        exporters can render counters as time series (Chrome ``ph: "C"``
        lanes); histogram mode keeps only the running totals.
        """
        if not self.enabled:
            return
        buf = self._buf()
        r = rank if rank is not None else buf.rank
        key = (r, name)
        buf.counters[key] = buf.counters.get(key, 0) + value
        if self._hist_factory is None:
            buf.samples.append((self._clock(), r, name, value))

    def record_report(self, report: Any, *, rank: int | None = None) -> None:
        """Fold a :class:`~repro.faults.ResilienceReport` into the stream.

        Each resilience event becomes an instant of the same kind
        (``integrity-failure``, ``retry``, ``degrade``, …); the retry /
        degradation / retransmission tallies feed the typed counters.
        """
        if not self.enabled or report is None:
            return
        r = rank if rank is not None else (report.rank if report.rank >= 0 else None)
        for event in report.events:
            self.instant(
                event.kind,
                rank=r,
                peer=event.peer,
                attempt=event.attempt,
                codec=event.codec or "",
                detail=event.detail,
            )
        for name, value in (
            ("retries", report.retries),
            ("degradations", report.degradations),
            ("retransmissions", report.retransmissions),
        ):
            if value:
                self.incr(name, value, rank=r)

    # -- export-side accessors ------------------------------------------------------

    def _all_buffers(self) -> list[_ThreadBuffer]:
        with self._lock:
            return list(self._buffers)

    def span_events(self) -> list[SpanEvent]:
        """All closed spans, merged across threads, ordered by start time."""
        events = [s for buf in self._all_buffers() for s in buf.spans]
        events.sort(key=lambda s: s.t0_ns)
        return events

    def instant_events(self) -> list[InstantEvent]:
        """All point events, merged across threads, ordered by timestamp."""
        events = [i for buf in self._all_buffers() for i in buf.instants]
        events.sort(key=lambda i: i.ts_ns)
        return events

    def counters(self) -> dict[tuple[int, str], float]:
        """Merged ``(rank, name) -> value`` counter map."""
        out: dict[tuple[int, str], float] = {}
        for buf in self._all_buffers():
            for key, value in buf.counters.items():
                out[key] = out.get(key, 0) + value
        return out

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` across all ranks."""
        return sum(v for (_, n), v in self.counters().items() if n == name)

    def counter_samples(self) -> list[tuple[int, int, str, float]]:
        """Timestamped counter increments ``(ts_ns, rank, name, delta)``.

        Merged across threads, ordered by timestamp.  Empty in
        histogram mode (only totals are kept there).
        """
        samples = [s for buf in self._all_buffers() for s in buf.samples]
        samples.sort(key=lambda s: s[0])
        return samples

    def span_histograms(self) -> dict[tuple[int, str], Any]:
        """Merged ``(rank, kind) -> LogHistogram`` map (histogram mode).

        Empty when ``span_histograms`` was not enabled.
        """
        out: dict[tuple[int, str], Any] = {}
        for buf in self._all_buffers():
            for key, hist in buf.histograms.items():
                if key in out:
                    out[key].merge(hist)
                else:
                    merged = type(hist)(growth=hist.growth)
                    merged.merge(hist)
                    out[key] = merged
        return out

    def ranks(self) -> list[int]:
        """Sorted ranks that recorded at least one event or counter."""
        seen: set[int] = set()
        for buf in self._all_buffers():
            seen.update(s.rank for s in buf.spans)
            seen.update(i.rank for i in buf.instants)
            seen.update(r for r, _ in buf.counters)
            seen.update(r for r, _ in buf.histograms)
        return sorted(seen)

    def absorb(
        self,
        *,
        spans: Sequence[SpanEvent] = (),
        instants: Sequence[InstantEvent] = (),
        counters: dict[tuple[int, str], float] | None = None,
        samples: Sequence[tuple[int, int, str, float]] = (),
        histograms: dict[tuple[int, str], Any] | None = None,
    ) -> None:
        """Merge events recorded elsewhere into this tracer.

        The process runtime uses this to fold each rank's spooled trace
        back into the parent's tracer: spans/instants/samples append,
        counters add, histograms merge.  Timestamps are assumed
        comparable with this tracer's clock (true for
        ``perf_counter_ns`` across processes on one Linux machine).
        """
        buf = self._buf()
        buf.spans.extend(spans)
        buf.instants.extend(instants)
        if counters:
            for key, value in counters.items():
                buf.counters[key] = buf.counters.get(key, 0) + value
        buf.samples.extend(samples)
        if histograms:
            for key, hist in histograms.items():
                mine = buf.histograms.get(key)
                if mine is None:
                    buf.histograms[key] = hist
                else:
                    mine.merge(hist)

    def clear(self) -> None:
        """Drop all recorded events and counters (buffers stay bound)."""
        for buf in self._all_buffers():
            buf.spans.clear()
            buf.instants.clear()
            buf.counters.clear()
            buf.histograms.clear()
            buf.samples.clear()


# -- module-level active tracer -------------------------------------------------------

_active: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed tracer, or ``None`` when tracing is off."""
    return _active


def install(tracer: Tracer | None) -> None:
    """Install ``tracer`` as the process-global active tracer."""
    global _active
    _active = tracer


def uninstall() -> None:
    """Turn tracing off (equivalent to ``install(None)``)."""
    install(None)


@contextmanager
def tracing(**kwargs: Any) -> Iterator[Tracer]:
    """Run a block under a fresh installed tracer; restores the previous one."""
    tracer = Tracer(**kwargs)
    previous = _active
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def span(kind: str, *, rank: int | None = None, **attrs: Any):
    """Open a span on the active tracer (no-op context when disabled)."""
    t = _active
    if t is None or not t.enabled:
        return _NULL_SPAN
    return _Span(t, t._buf(), kind, rank, attrs)


def instant(kind: str, *, rank: int | None = None, **attrs: Any) -> None:
    """Record a point event on the active tracer (no-op when disabled)."""
    t = _active
    if t is not None:
        t.instant(kind, rank=rank, **attrs)


def incr(name: str, value: float = 1, *, rank: int | None = None) -> None:
    """Bump a typed counter on the active tracer (no-op when disabled)."""
    t = _active
    if t is not None:
        t.incr(name, value, rank=rank)


def bind_rank(rank: int) -> None:
    """Bind the calling thread to ``rank`` on the active tracer."""
    t = _active
    if t is not None:
        t.bind_rank(rank)


def record_report(report: Any, *, rank: int | None = None) -> None:
    """Fold a resilience report into the active tracer's stream."""
    t = _active
    if t is not None:
        t.record_report(report, rank=rank)
