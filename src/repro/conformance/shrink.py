"""Greedy scenario minimisation.

Classic first-improvement shrinking: ask the property for candidate
scenarios "smaller" than the current one, keep the first candidate that
still fails, restart from it.  Properties yield their candidates in
descending aggressiveness (drop a whole rank before halving payloads),
so the loop converges in a handful of rounds; a global check budget
bounds the worst case since every check spins up thread worlds.

"Still fails" means *fails at all*, not "fails identically" — shrinking
an off-by-one into a crash is fine, the minimal scenario is what gets
debugged.  The original failure message is preserved in the
:class:`~repro.conformance.runner.CaseOutcome` either way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conformance.properties import Property, check_scenario
from repro.conformance.scenario import Scenario

__all__ = ["ShrinkResult", "shrink_failure"]

#: Default cap on re-checks during one shrink (each check runs a world).
DEFAULT_SHRINK_BUDGET = 300


@dataclass(frozen=True)
class ShrinkResult:
    """The minimal failing scenario found, and what it cost to find."""

    scenario: Scenario
    failure: str
    checks: int
    rounds: int


def shrink_failure(
    prop: Property,
    scenario: Scenario,
    *,
    budget: int = DEFAULT_SHRINK_BUDGET,
) -> ShrinkResult:
    """Minimise a failing ``scenario`` for ``prop`` (greedy, first-improvement)."""
    failure = check_scenario(prop, scenario)
    if failure is None:
        raise ValueError("shrink_failure called with a passing scenario")
    checks = 1
    rounds = 0
    current, current_failure = scenario, failure
    seen = {current.to_json()}
    improved = True
    while improved and checks < budget:
        improved = False
        rounds += 1
        for candidate in prop.shrink(current):
            key = candidate.to_json()
            if key in seen:
                continue
            seen.add(key)
            if checks >= budget:
                break
            result = check_scenario(prop, candidate)
            checks += 1
            if result is not None:
                current, current_failure = candidate, result
                improved = True
                break  # restart the move list from the smaller scenario
    return ShrinkResult(scenario=current, failure=current_failure, checks=checks, rounds=rounds)
