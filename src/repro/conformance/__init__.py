"""Property-based differential conformance harness (DESIGN.md §8).

The repository accumulates interchangeable implementations of the same
contracts — five all-to-all variants, three execution substrates, a
family of lossy codecs with error bounds — and every one of them must
keep agreeing with its reference oracle as the hot paths evolve.  This
package generates randomized scenarios from a seed, runs each one
against its oracle, and on failure replays and *shrinks* the scenario
to a minimal counterexample:

* :mod:`repro.conformance.scenario` — seeded scenario generators
  (stdlib :class:`random.Random`; NumPy data is derived from a
  generated ``data_seed`` so a seed pins the whole case);
* :mod:`repro.conformance.oracles` — reference oracles: the direct
  ``recv[d][s] = send[s][d]`` exchange, NumPy's FFT, codec error
  bounds;
* :mod:`repro.conformance.properties` — the property registry: each
  property bundles a generator, a checker and shrinking moves;
* :mod:`repro.conformance.runner` — deterministic case enumeration
  (``seed → identical scenario``), failure collection, replay;
* :mod:`repro.conformance.shrink` — greedy minimisation of failing
  scenarios;
* :mod:`repro.conformance.hooks` — test-only mutation points used by
  the harness's own self-test (inject an off-by-one into a collective
  and prove the harness catches it);
* :mod:`repro.conformance.cli` — ``python -m repro conformance``.

Heavy submodules are imported lazily so that low-level modules (the
collectives, which call into :mod:`~repro.conformance.hooks`) can
import this package without creating an import cycle.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "PROPERTY_NAMES",
    "Scenario",
    "CaseOutcome",
    "ConformanceReport",
    "run_case",
    "run_conformance",
    "shrink_failure",
]

#: Property families, in registry order (see properties.PROPERTIES).
PROPERTY_NAMES = (
    "alltoallv",
    "bruck",
    "codec",
    "fft",
    "reshape",
    "trace",
    "faults",
)

_LAZY = {
    "Scenario": ("repro.conformance.scenario", "Scenario"),
    "CaseOutcome": ("repro.conformance.runner", "CaseOutcome"),
    "ConformanceReport": ("repro.conformance.runner", "ConformanceReport"),
    "run_case": ("repro.conformance.runner", "run_case"),
    "run_conformance": ("repro.conformance.runner", "run_conformance"),
    "shrink_failure": ("repro.conformance.shrink", "shrink_failure"),
}


def __getattr__(name: str) -> Any:
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module), attr)
