"""Reference oracles the generated implementations are checked against.

Every differential property needs an independent source of truth:

* :func:`make_send_matrix` / :func:`expected_recv` — the alltoallv
  contract is pure bookkeeping: ``recv[d][s] = send[s][d]``.  The
  expected side is computed by direct indexing, touching none of the
  runtime/collective code under test.
* :func:`scatter_global` / :func:`gather_global` — reshape oracles:
  slicing a global array by a :class:`~repro.fft.decomposition.CartesianDecomp`
  with plain NumPy indexing (no plan, no boxes math reuse beyond
  ``box_of``, which the geometry tests cover directly).
* :func:`numpy_fft_reference` — NumPy's FFT as the transform oracle.
* :func:`assert_blocks_equal` — dtype-tolerant exact comparison
  (one-sided transports return raw ``uint8``; compressed transports
  restore the original dtype).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConformanceFailure
from repro.fft.decomposition import CartesianDecomp

__all__ = [
    "make_send_matrix",
    "expected_recv",
    "assert_blocks_equal",
    "scatter_global",
    "gather_global",
    "numpy_fft_reference",
    "relative_error",
]


def make_send_matrix(
    sizes: list[list[int]], dtype: str, data_seed: int
) -> list[list[np.ndarray]]:
    """Deterministic ``send[s][d]`` payloads: unique values per (s, d) pair."""
    rng = np.random.default_rng(data_seed)
    p = len(sizes)
    out: list[list[np.ndarray]] = []
    for s in range(p):
        row: list[np.ndarray] = []
        for d in range(p):
            n = int(sizes[s][d])
            if dtype == "uint8":
                row.append(rng.integers(0, 256, size=n, dtype=np.uint8))
            elif dtype == "complex128":
                row.append((rng.standard_normal(n) + 1j * rng.standard_normal(n)).astype(np.complex128))
            else:
                row.append(rng.standard_normal(n))
        out.append(row)
    return out


def expected_recv(send: list[list[np.ndarray]]) -> list[list[np.ndarray]]:
    """The alltoallv contract, by direct transposition: ``recv[d][s] = send[s][d]``."""
    p = len(send)
    return [[send[s][d] for s in range(p)] for d in range(p)]


def assert_blocks_equal(got: np.ndarray, want: np.ndarray, *, where: str) -> None:
    """Exact equality, tolerating byte-typed transports.

    ``got`` may be a raw ``uint8`` view of ``want``'s bytes (OSC window
    transport) or carry the original dtype.  Zero-size blocks compare
    equal regardless of dtype (senders passing ``None``/empty produce
    placeholder dtypes on the receive side).
    """
    got = np.asarray(got)
    want = np.asarray(want)
    if want.size == 0:
        if got.size != 0:
            raise ConformanceFailure(f"{where}: expected empty block, got {got.size} elements")
        return
    if got.dtype != want.dtype:
        if got.dtype != np.uint8 or got.nbytes != want.nbytes:
            raise ConformanceFailure(
                f"{where}: dtype/size mismatch: got {got.dtype}×{got.size}, "
                f"want {want.dtype}×{want.size}"
            )
        got = got.reshape(-1).view(want.dtype)
    if got.shape != want.reshape(-1).shape[:1] and got.shape != want.shape:
        got = got.reshape(want.shape)
    if not np.array_equal(got.reshape(-1), want.reshape(-1)):
        bad = int(np.flatnonzero(got.reshape(-1) != want.reshape(-1))[0])
        raise ConformanceFailure(
            f"{where}: payload mismatch at element {bad}: "
            f"got {got.reshape(-1)[bad]!r}, want {want.reshape(-1)[bad]!r}"
        )


# -- reshape / FFT oracles --------------------------------------------------------------


def scatter_global(decomp: CartesianDecomp, x: np.ndarray) -> list[np.ndarray]:
    """Slice a global ``(..., n0, n1, n2)`` array into per-rank blocks."""
    out: list[np.ndarray] = []
    for r in range(decomp.nranks):
        box = decomp.box_of(r)
        sl = tuple(slice(lo, hi) for lo, hi in zip(box.lo, box.hi))
        out.append(np.ascontiguousarray(x[(Ellipsis,) + sl]))
    return out


def gather_global(decomp: CartesianDecomp, blocks: list[np.ndarray]) -> np.ndarray:
    """Reassemble per-rank blocks into the global array."""
    batch = blocks[0].shape[:-3]
    out = np.empty(batch + decomp.shape, dtype=blocks[0].dtype)
    for r in range(decomp.nranks):
        box = decomp.box_of(r)
        sl = tuple(slice(lo, hi) for lo, hi in zip(box.lo, box.hi))
        out[(Ellipsis,) + sl] = blocks[r]
    return out


def numpy_fft_reference(x: np.ndarray, *, inverse: bool = False) -> np.ndarray:
    """NumPy's FFT over the trailing three axes (the transform oracle)."""
    axes = (-3, -2, -1)
    return np.fft.ifftn(x, axes=axes) if inverse else np.fft.fftn(x, axes=axes)


def relative_error(got: np.ndarray, want: np.ndarray) -> float:
    """Normwise relative error ``||got - want|| / ||want||`` (0 for 0/0)."""
    denom = float(np.linalg.norm(np.asarray(want).reshape(-1)))
    diff = float(np.linalg.norm((np.asarray(got) - np.asarray(want)).reshape(-1)))
    if denom == 0.0:
        return 0.0 if diff == 0.0 else float("inf")
    return diff / denom
