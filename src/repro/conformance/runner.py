"""Deterministic case runner: seed → scenarios → outcomes → report.

Replay contract
---------------

Case ``i`` of a run with seed ``S`` is produced by
``random.Random(f"repro-conformance:{S}:{i}")`` and the property chosen
round-robin from the active property list.  String seeding hashes via
SHA-512, so the stream is identical across platforms and Python builds
(unlike ``hash()``-based seeding) — replaying ``(S, i)`` regenerates the
byte-identical scenario, which is what makes the printed one-line repro
command in failure output trustworthy.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.conformance.properties import PROPERTIES, Property, check_scenario
from repro.conformance.scenario import Scenario

__all__ = ["CaseOutcome", "ConformanceReport", "case_rng", "run_case", "run_conformance"]

#: Salt prefix for per-case RNG streams (bump to invalidate old seeds).
SEED_NAMESPACE = "repro-conformance"


def case_rng(seed: int, index: int) -> random.Random:
    """The (platform-stable) generator that pins case ``index`` of ``seed``."""
    return random.Random(f"{SEED_NAMESPACE}:{seed}:{index}")


@dataclass
class CaseOutcome:
    """Result of one generated case, with everything needed to replay it."""

    index: int
    seed: int
    scenario: Scenario
    failure: str | None = None
    shrunk: Scenario | None = None
    shrunk_failure: str | None = None
    shrink_checks: int = 0

    @property
    def ok(self) -> bool:
        return self.failure is None

    @property
    def minimal(self) -> Scenario:
        """The smallest scenario known to still fail (the shrunk one when available)."""
        return self.shrunk if self.shrunk is not None else self.scenario

    def to_dict(self) -> dict:
        out: dict = {
            "index": self.index,
            "seed": self.seed,
            "prop": self.scenario.prop,
            "scenario": self.scenario.params,
            "failure": self.failure,
        }
        if self.shrunk is not None:
            out["shrunk"] = self.shrunk.params
            out["shrunk_failure"] = self.shrunk_failure
            out["shrink_checks"] = self.shrink_checks
        return out

    @property
    def replay_command(self) -> str:
        return f"python -m repro conformance --seed {self.seed} --replay {self.index}"


@dataclass
class ConformanceReport:
    """Aggregate of one conformance run (serialisable failure-replay file)."""

    seed: int
    cases: int = 0
    outcomes: list[CaseOutcome] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseOutcome]:
        return [o for o in self.outcomes if not o.ok]

    @property
    def ok(self) -> bool:
        return not self.failures

    def per_property(self) -> dict[str, tuple[int, int]]:
        """``{property: (cases run, failures)}``."""
        counts: dict[str, tuple[int, int]] = {}
        for o in self.outcomes:
            run, bad = counts.get(o.scenario.prop, (0, 0))
            counts[o.scenario.prop] = (run + 1, bad + (0 if o.ok else 1))
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "cases": self.cases,
                "failures": [o.to_dict() for o in self.failures],
            },
            indent=2,
            sort_keys=True,
        )


def _active(properties: Sequence[str] | None) -> list[Property]:
    if properties is None:
        return list(PROPERTIES.values())
    unknown = sorted(set(properties) - set(PROPERTIES))
    if unknown:
        raise ValueError(f"unknown properties {unknown}; expected subset of {sorted(PROPERTIES)}")
    return [PROPERTIES[name] for name in properties]


def generate_case(seed: int, index: int, properties: Sequence[str] | None = None) -> Scenario:
    """Deterministically regenerate the scenario of case ``(seed, index)``."""
    active = _active(properties)
    prop = active[index % len(active)]
    return prop.generate(case_rng(seed, index))


def run_case(
    seed: int,
    index: int,
    properties: Sequence[str] | None = None,
    *,
    shrink: bool = False,
) -> CaseOutcome:
    """Generate, check and (on failure, optionally) shrink one case."""
    active = _active(properties)
    prop = active[index % len(active)]
    scenario = prop.generate(case_rng(seed, index))
    outcome = CaseOutcome(index=index, seed=seed, scenario=scenario)
    outcome.failure = check_scenario(prop, scenario)
    if outcome.failure is not None and shrink:
        from repro.conformance.shrink import shrink_failure

        result = shrink_failure(prop, scenario)
        outcome.shrunk = result.scenario
        outcome.shrunk_failure = result.failure
        outcome.shrink_checks = result.checks
    return outcome


def run_conformance(
    seed: int,
    cases: int,
    properties: Sequence[str] | None = None,
    *,
    shrink: bool = False,
    stop_on_failure: bool = False,
    log: Callable[[str], None] | None = None,
) -> ConformanceReport:
    """Run ``cases`` generated cases, dealing properties round-robin."""
    report = ConformanceReport(seed=seed)
    say = log or (lambda _msg: None)
    for index in range(cases):
        outcome = run_case(seed, index, properties, shrink=shrink)
        report.outcomes.append(outcome)
        report.cases += 1
        if outcome.ok:
            continue
        say(f"FAIL case {index} ({outcome.scenario.describe()}): {outcome.failure}")
        if outcome.shrunk is not None:
            say(
                f"  shrunk after {outcome.shrink_checks} checks to "
                f"{outcome.shrunk.describe()}: {outcome.shrunk_failure}"
            )
        say(f"  replay: {outcome.replay_command}")
        if stop_on_failure:
            break
    return report
