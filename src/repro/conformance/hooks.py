"""Test-only mutation hooks: controlled defect injection points.

The conformance harness must be able to prove *it would catch a real
bug*.  Faults injected by :mod:`repro.faults` model the environment
(bit-flips, drops, stragglers) — the self-healing machinery is supposed
to absorb those.  Mutation hooks model *implementation defects*: an
off-by-one in a put offset, a wrong block index in Bruck's rounds.
Production code calls :func:`mutate` at a handful of named points; with
no mutation installed the call returns its input unchanged (one dict
lookup on an empty dict — no measurable hot-path cost), so the hooks
are inert outside the harness's self-test.

This module deliberately imports nothing from the rest of the package:
the collectives import it, and it must never import them back.

Usage (tests only)::

    from repro.conformance import hooks

    with hooks.mutation("osc.put_offset", lambda off, **ctx: max(0, off - 1)):
        ...   # every OSC put now lands one byte early
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["MUTATION_POINTS", "install_mutation", "clear_mutations", "mutation", "mutate", "active_mutations"]

#: Named mutation points wired into production code.  Each receives the
#: original value plus keyword context and returns the (possibly
#: mutated) value.
MUTATION_POINTS = (
    "osc.put_offset",  # byte offset of a one-sided put (OscAlltoallv)
    "compressed.put_offset",  # byte offset of a compressed-frame put
    "bruck.block_index",  # block index set shipped in a Bruck round
    "pairwise.chunk",  # outgoing chunk of one pairwise ring step
)

_MUTATIONS: dict[str, Callable[..., Any]] = {}


def install_mutation(point: str, fn: Callable[..., Any]) -> None:
    """Install ``fn`` at ``point`` (replacing any previous mutation)."""
    if point not in MUTATION_POINTS:
        raise ValueError(f"unknown mutation point {point!r}; expected one of {MUTATION_POINTS}")
    _MUTATIONS[point] = fn


def clear_mutations() -> None:
    """Remove every installed mutation."""
    _MUTATIONS.clear()


def active_mutations() -> tuple[str, ...]:
    """Names of the points that currently have a mutation installed."""
    return tuple(sorted(_MUTATIONS))


@contextmanager
def mutation(point: str, fn: Callable[..., Any]) -> Iterator[None]:
    """Scoped :func:`install_mutation`; restores the previous state."""
    previous = _MUTATIONS.get(point)
    install_mutation(point, fn)
    try:
        yield
    finally:
        if previous is None:
            _MUTATIONS.pop(point, None)
        else:
            _MUTATIONS[point] = previous


def mutate(point: str, value: Any, **context: Any) -> Any:
    """Pass ``value`` through the mutation at ``point`` (identity when none)."""
    fn = _MUTATIONS.get(point)
    return value if fn is None else fn(value, **context)
