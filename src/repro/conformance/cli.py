"""``python -m repro conformance`` — the property-based conformance gate.

Typical invocations::

    python -m repro conformance                       # 35 cases, seed 0
    python -m repro conformance --seed 7 --cases 200 --shrink
    python -m repro conformance --properties alltoallv,bruck
    python -m repro conformance --seed 7 --replay 13  # re-run one case
    python -m repro conformance --out failures.json   # CI replay artefact

Exit status is 0 when every case passes, 1 otherwise.  On failure the
summary prints, per failing case, the exact replay command — the run is
seed-deterministic, so the command reproduces the same scenario
bit-for-bit (see :mod:`repro.conformance.runner`).
"""

from __future__ import annotations

from typing import Callable

from repro.conformance.properties import PROPERTIES
from repro.conformance.runner import ConformanceReport, run_case, run_conformance

__all__ = ["run_conformance_cli"]


def _format_summary(report: ConformanceReport, shrink: bool) -> str:
    lines = [f"=== conformance: seed {report.seed}, {report.cases} cases ==="]
    width = max(len(name) for name in PROPERTIES)
    for name, (run, bad) in sorted(report.per_property().items()):
        verdict = "ok" if bad == 0 else f"{bad} FAILED"
        lines.append(f"  {name:<{width}}  {run:>4} cases  {verdict}")
    if report.ok:
        lines.append("all cases passed")
        return "\n".join(lines)
    lines.append(f"{len(report.failures)} case(s) FAILED:")
    for o in report.failures:
        lines.append(f"  case {o.index}: {o.scenario.describe()}")
        lines.append(f"    {o.failure}")
        if o.shrunk is not None:
            lines.append(
                f"    shrunk ({o.shrink_checks} checks): {o.shrunk.to_json()}"
            )
            lines.append(f"    shrunk failure: {o.shrunk_failure}")
        elif not shrink:
            lines.append("    (re-run with --shrink to minimise)")
        lines.append(f"    replay: {o.replay_command}")
    return "\n".join(lines)


def run_conformance_cli(
    *,
    seed: int = 0,
    cases: int = 35,
    properties: str | None = None,
    shrink: bool = False,
    replay: int | None = None,
    stop_on_failure: bool = False,
    out: str | None = None,
    echo: Callable[[str], None] = print,
) -> int:
    """Drive a conformance run from parsed CLI options; returns exit status."""
    names = None
    if properties:
        names = [p.strip() for p in properties.split(",") if p.strip()]

    if replay is not None:
        outcome = run_case(seed, replay, names, shrink=shrink)
        echo(f"=== conformance replay: seed {seed}, case {replay} ===")
        echo(f"scenario: {outcome.scenario.to_json()}")
        if outcome.ok:
            echo("PASSED")
            return 0
        echo(f"FAILED: {outcome.failure}")
        if outcome.shrunk is not None:
            echo(f"shrunk ({outcome.shrink_checks} checks): {outcome.shrunk.to_json()}")
            echo(f"shrunk failure: {outcome.shrunk_failure}")
        return 1

    report = run_conformance(
        seed, cases, names, shrink=shrink, stop_on_failure=stop_on_failure
    )
    echo(_format_summary(report, shrink))
    if out is not None and not report.ok:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        echo(f"failure-replay file written to {out}")
    return 0 if report.ok else 1
