"""Scenario objects: the replayable unit of one conformance case.

A :class:`Scenario` is a property name plus a JSON-safe parameter dict.
Everything a check needs — rank counts, size matrices, dtype names,
codec choices, fault plans — lives in ``params`` as plain ints, floats,
strings and (nested) lists, so a scenario can be printed, stored in a
failure-replay file, diffed, and fed back to the checker bit-for-bit.

Scenarios are *generated* from a stdlib :class:`random.Random` (see
:mod:`repro.conformance.properties`); NumPy randomness enters only via
a ``data_seed`` parameter drawn during generation, so the scenario
fully pins the data too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Scenario", "draw_sizes_matrix", "draw_data_seed"]


def _jsonify(value: Any) -> Any:
    """Normalise params to JSON-stable types (tuples → lists, np ints → int)."""
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, int):
        return int(value)
    # numpy scalars and anything else that knows how to be an int/float
    try:
        return int(value)
    except (TypeError, ValueError):
        return float(value)


@dataclass(frozen=True)
class Scenario:
    """One generated conformance case: ``(property, parameters)``."""

    prop: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", _jsonify(self.params))

    def with_params(self, **updates: Any) -> "Scenario":
        """A copy with some parameters replaced (shrinking uses this)."""
        merged = dict(self.params)
        merged.update(updates)
        return Scenario(self.prop, merged)

    # -- replay format -----------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON form (sorted keys — stable across runs)."""
        return json.dumps({"prop": self.prop, "params": self.params}, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "Scenario":
        raw = json.loads(text)
        return Scenario(raw["prop"], raw["params"])

    def describe(self) -> str:
        """One-line human summary for failure output."""
        bits = []
        for key in (
            "nranks",
            "dtype",
            "shape",
            "variants",
            "codec",
            "e_tol",
            "mode",
            "method",
            "runtimes",
        ):
            if key in self.params:
                bits.append(f"{key}={self.params[key]}")
        suffix = f" [{', '.join(bits)}]" if bits else ""
        return f"{self.prop}{suffix}"


# -- shared generator helpers ----------------------------------------------------------


def draw_data_seed(rng) -> int:
    """A NumPy seed pinned into the scenario (stdlib rng → np determinism)."""
    return rng.randrange(2**31)


def draw_sizes_matrix(rng, p: int, *, max_items: int = 48) -> list[list[int]]:
    """A ``p×p`` per-pair element-count matrix with adversarial structure.

    Mixes plain random counts with the shapes that historically break
    alltoallv implementations: zero-byte blocks, empty rows/columns,
    prime sizes, a self-send-only pattern.
    """
    style = rng.choice(["random", "sparse", "self-only", "all-empty", "ragged-primes"])
    if style == "all-empty":
        return [[0] * p for _ in range(p)]
    if style == "self-only":
        return [[rng.randrange(1, max_items) if s == d else 0 for d in range(p)] for s in range(p)]
    primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
    sizes: list[list[int]] = []
    for _ in range(p):
        row: list[int] = []
        for _ in range(p):
            if style == "sparse" and rng.random() < 0.5:
                row.append(0)
            elif style == "ragged-primes":
                row.append(rng.choice(primes))
            else:
                # plain random, with a healthy dose of 0 and 1 edges
                row.append(rng.choice([0, 1, rng.randrange(max_items), rng.randrange(max_items)]))
        sizes.append(row)
    return sizes
