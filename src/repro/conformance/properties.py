"""The conformance property registry: generate → check → shrink.

Each :class:`Property` bundles three pieces:

* ``generate(rng)`` — draw a random :class:`~repro.conformance.scenario.Scenario`
  from a stdlib :class:`random.Random` (the only source of generation
  randomness, so a seed pins the scenario exactly);
* ``check(scenario)`` — run the scenario and raise
  :class:`~repro.errors.ConformanceFailure` (or any exception) when an
  implementation disagrees with its oracle;
* ``shrink(scenario)`` — yield strictly "smaller" candidate scenarios
  for the greedy minimiser (fewer ranks, smaller sizes, one variant,
  simpler dtype).

The eight families
------------------

``alltoallv``
    Differential: every vector all-to-all variant (reference, linear,
    pairwise ± node-aware topology, OSC, OSC verify-mode, compressed
    OSC) against the pure-bookkeeping oracle ``recv[d][s] = send[s][d]``
    over ragged/empty/prime size matrices and mixed dtypes.
``bruck``
    Differential: the log-p equal-block algorithm at arbitrary — in
    particular non-power-of-two and prime — rank counts, including
    zero-size blocks.
``codec``
    Round-trip and bound invariants for every codec family, the wire
    frame, and the ``codec_for_tolerance`` ↔ ``tolerance_of_codec``
    selection consistency (margins included).
``fft``
    Differential: :class:`~repro.fft.plan.Fft3d` against NumPy's FFT on
    random geometries (prime dims, ragged decompositions, batches);
    with ``e_tol`` set, the realised error must respect the tolerance
    contract (×4 slack — the bound is normwise, scaled FP16 casts are
    peak-relative).
``reshape``
    Geometry: a reshape between two random Cartesian layouts must be a
    permutation (gather after reshape == original global array), with
    message counts and byte totals matching the plan's own accounting.
``trace``
    Metamorphic: running an exchange under an installed tracer, the
    tracer's byte/message counters must equal the stats objects the
    collectives report (``ExchangeStats`` / ``ReshapeStats``).
``faults``
    Self-healing: under a seeded fault plan (bit-flips, transient codec
    faults, stragglers), a lossless-codec compressed exchange still
    delivers bit-exact data and audits the recovery.
``runtime``
    Differential across execution substrates: the same seeded compressed
    exchange on the thread runtime and the process runtime must agree
    bit-for-bit (both are deterministic given the data seed), and each
    must agree with the bookkeeping oracle — exactly for lossless
    codecs, within the codec tolerance for lossy ones.
"""

from __future__ import annotations

import random
from typing import Iterator

import numpy as np

from repro.errors import ConformanceFailure
from repro.conformance.oracles import (
    assert_blocks_equal,
    expected_recv,
    gather_global,
    make_send_matrix,
    numpy_fft_reference,
    relative_error,
    scatter_global,
)
from repro.conformance.scenario import Scenario, draw_data_seed, draw_sizes_matrix

__all__ = ["Property", "PROPERTIES", "check_scenario"]

#: Slack factor on normwise tolerance checks (see the ``fft`` family
#: notes above: per-message bounds are per-value or peak-relative, the
#: check is normwise; real defects produce O(1) errors, far above this).
TOLERANCE_SLACK = 4.0


class Property:
    """One conformance property family (subclass per family)."""

    name: str = "abstract"

    def generate(self, rng: random.Random) -> Scenario:
        raise NotImplementedError

    def check(self, scenario: Scenario) -> None:
        raise NotImplementedError

    def shrink(self, scenario: Scenario) -> Iterator[Scenario]:
        return iter(())


def check_scenario(prop: Property, scenario: Scenario) -> str | None:
    """Run one check; ``None`` when it passes, a failure message otherwise.

    Any exception counts as a failure — a crash in a collective is as
    much a conformance violation as a wrong byte.
    """
    try:
        prop.check(scenario)
    except ConformanceFailure as exc:
        return str(exc)
    except Exception as exc:  # noqa: BLE001 - crashes are findings too
        return f"{type(exc).__name__}: {exc}"
    return None


# -- helpers shared by the SPMD properties ----------------------------------------------


def _topology(p: int, gpus_per_node: int):
    from repro.machine.spec import GpuSpec, MachineSpec, NetworkSpec
    from repro.machine.topology import Topology

    spec = MachineSpec(
        name="conformance", gpus_per_node=gpus_per_node, gpu=GpuSpec(), network=NetworkSpec()
    )
    return Topology(spec, p)


def _divisors(p: int) -> list[int]:
    return [g for g in range(1, p + 1) if p % g == 0]


def _shrunk_matrix(sizes: list[list[int]], drop: int) -> list[list[int]]:
    """The size matrix with rank ``drop``'s row and column removed."""
    return [
        [c for d, c in enumerate(row) if d != drop]
        for s, row in enumerate(sizes)
        if s != drop
    ]


# -- 1. alltoallv differential ----------------------------------------------------------

#: All vector-exchange variants the differential property covers.
ALLTOALLV_VARIANTS = (
    "reference",
    "linear",
    "pairwise",
    "pairwise-topo",
    "osc",
    "osc-verify",
    "compressed",
    "compressed-twolevel",
)


class AlltoallvProperty(Property):
    name = "alltoallv"

    def generate(self, rng: random.Random) -> Scenario:
        p = rng.choice([1, 2, 2, 3, 3, 4, 4, 5, 5, 6])
        dtype = rng.choice(["float64", "float64", "complex128", "uint8"])
        variants = [
            v for v in ALLTOALLV_VARIANTS if dtype != "uint8" or not v.startswith("compressed")
        ]
        return Scenario(
            self.name,
            {
                "nranks": p,
                "sizes": draw_sizes_matrix(rng, p),
                "dtype": dtype,
                "variants": variants,
                "topo_g": rng.choice(_divisors(p)),
                "pipeline_chunks": rng.choice([1, 1, 2, 3]),
                "data_seed": draw_data_seed(rng),
            },
        )

    def check(self, sc: Scenario) -> None:
        from repro.collectives import (
            CompressedOscAlltoallv,
            TwoLevelCompressedAlltoallv,
            osc_alltoallv,
            pairwise_alltoallv,
        )
        from repro.collectives.variants import linear_alltoallv
        from repro.compression.base import IdentityCodec
        from repro.runtime.thread_rt import ThreadWorld

        p = sc.params["nranks"]
        send = make_send_matrix(sc.params["sizes"], sc.params["dtype"], sc.params["data_seed"])
        want = expected_recv(send)
        topo = _topology(p, sc.params["topo_g"])
        chunks = sc.params["pipeline_chunks"]

        def kernel(comm, variant):
            row = send[comm.rank]
            if variant == "reference":
                return comm.alltoallv(row)
            if variant == "linear":
                return linear_alltoallv(comm, row)
            if variant == "pairwise":
                return pairwise_alltoallv(comm, row)
            if variant == "pairwise-topo":
                return pairwise_alltoallv(comm, row, topology=topo)
            if variant == "osc":
                return osc_alltoallv(comm, row)
            if variant == "osc-verify":
                return osc_alltoallv(comm, row, verify=True)
            if variant == "compressed-twolevel":
                # gather -> one inter-node aggregate per peer node -> scatter;
                # must be byte-equivalent to every flat variant.
                op = TwoLevelCompressedAlltoallv(
                    comm, IdentityCodec(), topology=topo, pipeline_chunks=chunks
                )
            else:
                op = CompressedOscAlltoallv(comm, IdentityCodec(), pipeline_chunks=chunks)
            try:
                return op(row)
            finally:
                op.free()

        for variant in sc.params["variants"]:
            results = ThreadWorld(p).run(kernel, variant)
            for d in range(p):
                for s in range(p):
                    assert_blocks_equal(
                        results[d][s], want[d][s], where=f"{variant}: rank {d} <- rank {s}"
                    )

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        p = sc.params["nranks"]
        sizes = sc.params["sizes"]
        # one variant at a time (pins the failure to one implementation)
        if len(sc.params["variants"]) > 1:
            for v in sc.params["variants"]:
                yield sc.with_params(variants=[v])
        # drop one rank (row + column of the size matrix)
        if p > 1:
            for drop in range(p - 1, -1, -1):
                yield sc.with_params(nranks=p - 1, sizes=_shrunk_matrix(sizes, drop), topo_g=1)
        # shrink payloads
        if any(c > 1 for row in sizes for c in row):
            yield sc.with_params(sizes=[[c // 2 for c in row] for row in sizes])
            yield sc.with_params(sizes=[[min(c, 1) for c in row] for row in sizes])
        if sc.params["dtype"] != "float64":
            variants = [v for v in sc.params["variants"] if v != "compressed" or True]
            yield sc.with_params(dtype="float64", variants=variants)
        if sc.params["pipeline_chunks"] != 1:
            yield sc.with_params(pipeline_chunks=1)
        if sc.params["topo_g"] != 1:
            yield sc.with_params(topo_g=1)


# -- 2. Bruck equal-block all-to-all ----------------------------------------------------


class BruckProperty(Property):
    name = "bruck"

    def generate(self, rng: random.Random) -> Scenario:
        return Scenario(
            self.name,
            {
                "nranks": rng.choice([1, 2, 3, 3, 4, 5, 5, 6, 7, 7]),
                "block_shape": rng.choice([[0], [1], [3], [5], [8], [2, 3]]),
                "dtype": rng.choice(["float64", "complex128", "int64"]),
                "data_seed": draw_data_seed(rng),
            },
        )

    @staticmethod
    def _blocks(sc: Scenario) -> list[list[np.ndarray]]:
        """``blocks[s][d]`` = the equal-shape block rank ``s`` sends ``d``."""
        rng = np.random.default_rng(sc.params["data_seed"])
        p = sc.params["nranks"]
        shape = tuple(sc.params["block_shape"])
        out: list[list[np.ndarray]] = []
        for _ in range(p):
            row = []
            for _ in range(p):
                if sc.params["dtype"] == "int64":
                    row.append(rng.integers(-(2**40), 2**40, size=shape, dtype=np.int64))
                elif sc.params["dtype"] == "complex128":
                    row.append(
                        (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
                            np.complex128
                        )
                    )
                else:
                    row.append(rng.standard_normal(shape))
            out.append(row)
        return out

    def check(self, sc: Scenario) -> None:
        from repro.collectives.variants import bruck_alltoall
        from repro.runtime.thread_rt import ThreadWorld

        p = sc.params["nranks"]
        blocks = self._blocks(sc)

        def kernel(comm):
            return bruck_alltoall(comm, blocks[comm.rank])

        results = ThreadWorld(p).run(kernel)
        for d in range(p):
            for s in range(p):
                got = results[d][s]
                want = blocks[s][d]
                if got.shape != want.shape or got.dtype != want.dtype:
                    raise ConformanceFailure(
                        f"bruck: rank {d} <- rank {s}: shape/dtype {got.shape}/{got.dtype}, "
                        f"want {want.shape}/{want.dtype}"
                    )
                assert_blocks_equal(got, want, where=f"bruck: rank {d} <- rank {s}")

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        p = sc.params["nranks"]
        if p > 1:
            yield sc.with_params(nranks=p - 1)
            if p > 2:
                yield sc.with_params(nranks=2)
        shape = sc.params["block_shape"]
        if len(shape) > 1:
            yield sc.with_params(block_shape=[int(np.prod(shape))])
        if shape and shape[0] > 1:
            yield sc.with_params(block_shape=[1] + list(shape[1:]))
        if sc.params["dtype"] != "float64":
            yield sc.with_params(dtype="float64")


# -- 3. codec invariants ----------------------------------------------------------------


class CodecProperty(Property):
    name = "codec"

    def generate(self, rng: random.Random) -> Scenario:
        family = rng.choice(["identity", "lossless", "trim", "trim", "cast", "cast", "zfp"])
        spec: dict = {"family": family}
        if family == "trim":
            spec["bits"] = rng.randrange(1, 53)
            spec["rounding"] = rng.choice(["nearest", "nearest", "truncate"])
        elif family == "cast":
            spec["fmt"] = rng.choice(["fp32", "fp16", "bf16"])
            spec["scaled"] = rng.random() < 0.5
        elif family == "zfp":
            if rng.random() < 0.5:
                spec["tolerance"] = 10.0 ** rng.uniform(-9, -2)
            else:
                spec["rate"] = rng.choice([2.0, 4.0, 8.0])
        scale_exp = rng.uniform(-6, 6)
        if spec.get("fmt") == "fp16" and not spec.get("scaled"):
            scale_exp = rng.uniform(-2, 2)  # keep plain FP16 casts in range
        return Scenario(
            self.name,
            {
                "codec": spec,
                "n": rng.choice([0, 1, 7, 64, 100, 257, 1000]),
                "dtype": rng.choice(["float64", "complex128"]),
                "kind": rng.choice(["random", "smooth", "constant", "zeros"]),
                "scale_exp": scale_exp,
                "e_tol": 10.0 ** rng.uniform(-15, -1),
                "margin": rng.choice([1.0, 2.0, 4.0, 8.0]),
                "hint": rng.choice(["random", "smooth"]),
                "data_seed": draw_data_seed(rng),
            },
        )

    @staticmethod
    def _codec(spec: dict):
        from repro.compression.base import IdentityCodec
        from repro.compression.lossless import ShuffleZlibCodec
        from repro.compression.mantissa import MantissaTrimCodec
        from repro.compression.truncation import CastCodec
        from repro.compression.zfp_like import ZfpLikeCodec

        family = spec["family"]
        if family == "identity":
            return IdentityCodec()
        if family == "lossless":
            return ShuffleZlibCodec(level=1)
        if family == "trim":
            return MantissaTrimCodec(spec["bits"], rounding=spec["rounding"])
        if family == "cast":
            return CastCodec(spec["fmt"], scaled=spec["scaled"])
        if "tolerance" in spec:
            return ZfpLikeCodec(tolerance=spec["tolerance"])
        return ZfpLikeCodec(rate=spec["rate"])

    @staticmethod
    def _data(sc: Scenario) -> np.ndarray:
        rng = np.random.default_rng(sc.params["data_seed"])
        n = sc.params["n"]
        scale = 10.0 ** sc.params["scale_exp"]
        kind = sc.params["kind"]
        if kind == "zeros":
            real = np.zeros(n)
        elif kind == "constant":
            real = np.full(n, scale)
        elif kind == "smooth":
            t = np.linspace(0.0, 4.0 * np.pi, max(n, 1))[:n]
            real = scale * (np.sin(t) + 0.3 * np.cos(3.0 * t))
        else:
            real = scale * rng.standard_normal(n)
        if sc.params["dtype"] == "complex128":
            imag = scale * rng.standard_normal(n) if kind == "random" else real[::-1].copy()
            return (real + 1j * imag).astype(np.complex128)
        return real

    def check(self, sc: Scenario) -> None:
        from repro.collectives.wire import decode_wire, encode_wire
        from repro.compression.selection import codec_for_tolerance, tolerance_of_codec

        codec = self._codec(sc.params["codec"])
        x = self._data(sc)
        msg = codec.compress(x)
        back = codec.decompress(msg)

        if back.shape != x.shape or back.dtype != x.dtype:
            raise ConformanceFailure(
                f"{codec.name}: round-trip changed shape/dtype: "
                f"{x.shape}/{x.dtype} -> {back.shape}/{back.dtype}"
            )
        if codec.lossless and not np.array_equal(back, x):
            raise ConformanceFailure(f"{codec.name}: lossless codec is not bit-exact")

        spec = sc.params["codec"]
        stream = x.view(np.float64).reshape(-1) if x.dtype == np.complex128 else x
        bstream = back.view(np.float64).reshape(-1) if back.dtype == np.complex128 else back
        if spec["family"] == "trim":
            bound = codec.max_relative_error
            bad = np.abs(bstream - stream) > bound * np.abs(stream)
            if bool(np.any(bad)):
                i = int(np.flatnonzero(bad)[0])
                raise ConformanceFailure(
                    f"{codec.name}: per-value bound {bound:g} violated at {i}: "
                    f"{stream[i]!r} -> {bstream[i]!r}"
                )
        elif spec["family"] == "cast":
            u = codec.fmt.unit_roundoff
            rel = relative_error(bstream, stream)
            if stream.size and float(np.linalg.norm(stream)) > 0 and rel > TOLERANCE_SLACK * u:
                raise ConformanceFailure(
                    f"{codec.name}: normwise error {rel:.3e} > {TOLERANCE_SLACK:g} x u = "
                    f"{TOLERANCE_SLACK * u:.3e}"
                )
        elif spec["family"] == "zfp" and "tolerance" in spec and stream.size:
            tol = spec["tolerance"]
            floor = 2.0**-40 * float(np.abs(stream).max())
            worst = float(np.abs(bstream - stream).max())
            if worst > max(TOLERANCE_SLACK * tol, 4.0 * floor):
                raise ConformanceFailure(
                    f"{codec.name}: max abs error {worst:.3e} > {TOLERANCE_SLACK:g} x tol"
                )

        # fixed-rate codecs must predict their own wire size exactly
        if codec.rate is not None and spec["family"] != "zfp":
            predicted = codec.compressed_nbytes(msg.n_values)
            if int(msg.payload.nbytes) != predicted:
                raise ConformanceFailure(
                    f"{codec.name}: payload {msg.payload.nbytes} B != predicted {predicted} B"
                )

        # the checksummed wire frame must be a faithful envelope
        frame = encode_wire(msg)
        decoded, consumed = decode_wire(frame)
        if consumed != int(frame.size):
            raise ConformanceFailure(
                f"{codec.name}: decode consumed {consumed} B of a {frame.size} B frame"
            )
        if (
            decoded.codec_name != msg.codec_name
            or decoded.dtype_name != msg.dtype_name
            or tuple(decoded.shape) != tuple(msg.shape)
            or not np.array_equal(decoded.payload, msg.payload)
        ):
            raise ConformanceFailure(f"{codec.name}: wire frame round-trip mutated the message")

        # selection consistency: the chosen codec's reported tolerance
        # honours the request — both with the explicit margin and with
        # the margin recorded on the codec at selection time.
        e_tol, margin = sc.params["e_tol"], sc.params["margin"]
        chosen = codec_for_tolerance(e_tol, data_hint=sc.params["hint"], margin=margin)
        for reported in (
            tolerance_of_codec(chosen, margin=margin),
            tolerance_of_codec(chosen),
        ):
            if reported > e_tol * (1.0 + 1e-12):
                raise ConformanceFailure(
                    f"selection round-trip: e_tol={e_tol:.3e} margin={margin:g} chose "
                    f"{chosen.name} whose reported tolerance {reported:.3e} exceeds the request"
                )

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        if sc.params["n"] > 64:
            yield sc.with_params(n=64)
        if sc.params["n"] > 1:
            yield sc.with_params(n=sc.params["n"] // 2)
        if sc.params["dtype"] != "float64":
            yield sc.with_params(dtype="float64")
        if sc.params["kind"] != "constant":
            yield sc.with_params(kind="constant")
        if sc.params["scale_exp"] != 0.0:
            yield sc.with_params(scale_exp=0.0)


# -- 4. FFT differential ----------------------------------------------------------------


def _valid_fft_geometry(shape: list[int], nranks: int) -> bool:
    from repro.errors import DecompositionError
    from repro.fft.decomposition import brick_decomposition, pencil_decomposition

    try:
        brick_decomposition(tuple(shape), nranks)
        for axis in range(3):
            pencil_decomposition(tuple(shape), nranks, axis)
    except DecompositionError:
        return False
    return True


class FftProperty(Property):
    name = "fft"

    def generate(self, rng: random.Random) -> Scenario:
        for _ in range(64):
            shape = [rng.choice([2, 3, 4, 5, 6, 7, 8]) for _ in range(3)]
            nranks = rng.choice([1, 2, 2, 3, 4, 4, 5, 6])
            if _valid_fft_geometry(shape, nranks):
                break
        else:  # pragma: no cover - the menu always admits (2,2,2) x 1
            shape, nranks = [4, 4, 4], 2
        mode = rng.choice(["exact", "exact", "e_tol"])
        return Scenario(
            self.name,
            {
                "shape": shape,
                "nranks": nranks,
                "batch": rng.choice([0, 0, 0, 2]),
                "mode": mode,
                "e_tol": rng.choice([1e-2, 1e-4, 1e-6, 1e-8, 1e-10, 1e-12]),
                "roundtrip": rng.random() < 0.4,
                "data_seed": draw_data_seed(rng),
            },
        )

    def check(self, sc: Scenario) -> None:
        from repro.fft.plan import Fft3d

        shape = tuple(sc.params["shape"])
        batch = (sc.params["batch"],) if sc.params["batch"] else ()
        rng = np.random.default_rng(sc.params["data_seed"])
        x = (
            rng.standard_normal(batch + shape) + 1j * rng.standard_normal(batch + shape)
        ).astype(np.complex128)

        if sc.params["mode"] == "exact":
            plan = Fft3d(shape, sc.params["nranks"])
            tol = 1e-9
        else:
            plan = Fft3d(shape, sc.params["nranks"], e_tol=sc.params["e_tol"])
            if plan.guaranteed_tolerance > sc.params["e_tol"] * (1 + 1e-12):
                raise ConformanceFailure(
                    f"fft: plan guarantees {plan.guaranteed_tolerance:.3e} "
                    f"> requested e_tol {sc.params['e_tol']:.3e}"
                )
            tol = TOLERANCE_SLACK * sc.params["e_tol"] + 1e-9

        y = plan.forward(x)
        rel = relative_error(y, numpy_fft_reference(x))
        if rel > tol:
            raise ConformanceFailure(
                f"fft: forward error {rel:.3e} > {tol:.3e} "
                f"(shape={shape}, p={sc.params['nranks']}, mode={sc.params['mode']})"
            )
        stats = plan.last_stats
        if sc.params["mode"] == "e_tol" and stats.wire_bytes > stats.logical_bytes:
            raise ConformanceFailure(
                f"fft: truncation-family exchange expanded on the wire: "
                f"{stats.wire_bytes} > {stats.logical_bytes} B"
            )
        if sc.params["roundtrip"]:
            back = plan.backward(y)
            rel = relative_error(back, x)
            if rel > 2.0 * tol:
                raise ConformanceFailure(f"fft: round-trip error {rel:.3e} > {2.0 * tol:.3e}")

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        p = sc.params["nranks"]
        shape = sc.params["shape"]
        for cand_p in sorted({1, 2, p - 1}):
            if 0 < cand_p < p and _valid_fft_geometry(shape, cand_p):
                yield sc.with_params(nranks=cand_p)
        for axis in range(3):
            if shape[axis] > 2:
                cand = list(shape)
                cand[axis] = 2
                if _valid_fft_geometry(cand, p):
                    yield sc.with_params(shape=cand)
        if sc.params["batch"]:
            yield sc.with_params(batch=0)
        if sc.params["roundtrip"]:
            yield sc.with_params(roundtrip=False)


# -- 5. reshape geometry ----------------------------------------------------------------


def _decomp(kind: str, shape: tuple[int, int, int], nranks: int):
    from repro.fft.decomposition import brick_decomposition, pencil_decomposition

    if kind == "brick":
        return brick_decomposition(shape, nranks)
    return pencil_decomposition(shape, nranks, int(kind[-1]))


class ReshapeProperty(Property):
    name = "reshape"

    def generate(self, rng: random.Random) -> Scenario:
        kinds = ["brick", "pencil0", "pencil1", "pencil2"]
        for _ in range(64):
            shape = [rng.choice([2, 3, 4, 5, 6, 7, 8, 9]) for _ in range(3)]
            nranks = rng.choice([1, 2, 3, 4, 5, 6])
            if _valid_fft_geometry(shape, nranks):
                break
        else:  # pragma: no cover
            shape, nranks = [4, 4, 4], 2
        return Scenario(
            self.name,
            {
                "shape": shape,
                "nranks": nranks,
                "src": rng.choice(kinds),
                "dst": rng.choice(kinds),
                "dtype": rng.choice(["float64", "complex128"]),
                "batch": rng.choice([0, 0, 3]),
                "data_seed": draw_data_seed(rng),
            },
        )

    def check(self, sc: Scenario) -> None:
        from repro.fft.reshape import ReshapePlan, ReshapeStats
        from repro.runtime.virtual import VirtualWorld

        shape = tuple(sc.params["shape"])
        p = sc.params["nranks"]
        src = _decomp(sc.params["src"], shape, p)
        dst = _decomp(sc.params["dst"], shape, p)
        plan = ReshapePlan(src, dst)
        batch = (sc.params["batch"],) if sc.params["batch"] else ()
        rng = np.random.default_rng(sc.params["data_seed"])
        x = rng.standard_normal(batch + shape)
        if sc.params["dtype"] == "complex128":
            x = (x + 1j * rng.standard_normal(batch + shape)).astype(np.complex128)

        world = VirtualWorld(p)
        stats = ReshapeStats()
        out = plan.run_virtual(world, scatter_global(src, x), stats=stats)
        got = gather_global(dst, out)
        if not np.array_equal(got, x):
            bad = int(np.flatnonzero((got != x).reshape(-1))[0])
            raise ConformanceFailure(
                f"reshape {sc.params['src']}->{sc.params['dst']}: cell {bad} corrupted"
            )

        itembytes = x.itemsize * (int(np.prod(batch)) if batch else 1)
        expected_bytes = plan.total_bytes(itemsize=itembytes)
        if world.traffic.messages != plan.n_messages:
            raise ConformanceFailure(
                f"reshape: traffic logged {world.traffic.messages} messages, "
                f"plan says {plan.n_messages}"
            )
        if world.traffic.total_bytes != expected_bytes:
            raise ConformanceFailure(
                f"reshape: traffic logged {world.traffic.total_bytes} B, "
                f"plan says {expected_bytes} B"
            )
        if (
            stats.messages != plan.n_messages
            or stats.logical_bytes != expected_bytes
            or stats.wire_bytes != expected_bytes
        ):
            raise ConformanceFailure(
                f"reshape: stats ({stats.messages} msgs, {stats.logical_bytes}/"
                f"{stats.wire_bytes} B) disagree with plan ({plan.n_messages} msgs, "
                f"{expected_bytes} B)"
            )

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        p = sc.params["nranks"]
        shape = sc.params["shape"]
        for cand_p in sorted({1, 2, p - 1}):
            if 0 < cand_p < p and _valid_fft_geometry(shape, cand_p):
                yield sc.with_params(nranks=cand_p)
        for axis in range(3):
            if shape[axis] > 2:
                cand = list(shape)
                cand[axis] = 2
                if _valid_fft_geometry(cand, p):
                    yield sc.with_params(shape=cand)
        if sc.params["batch"]:
            yield sc.with_params(batch=0)
        if sc.params["dtype"] != "float64":
            yield sc.with_params(dtype="float64")


# -- 6. tracer/stats consistency --------------------------------------------------------


class TraceProperty(Property):
    name = "trace"

    def generate(self, rng: random.Random) -> Scenario:
        mode = rng.choice(["pairwise", "compressed", "virtual"])
        params: dict = {"mode": mode, "data_seed": draw_data_seed(rng)}
        if mode == "virtual":
            for _ in range(64):
                shape = [rng.choice([2, 3, 4, 5, 6])] * 3
                nranks = rng.choice([1, 2, 3, 4])
                if _valid_fft_geometry(shape, nranks):
                    break
            params.update(shape=shape, nranks=nranks, src="brick", dst=f"pencil{rng.randrange(3)}")
        else:
            p = rng.choice([2, 3, 4, 5])
            params.update(nranks=p, sizes=draw_sizes_matrix(rng, p, max_items=32))
            if mode == "compressed":
                params["codec"] = rng.choice(["identity", "trim", "cast"])
        return Scenario(self.name, params)

    def check(self, sc: Scenario) -> None:
        from repro.trace import tracing

        mode = sc.params["mode"]
        with tracing() as tracer:
            expect = self._run(sc)
        got = {
            name: int(tracer.counter_total(name))
            for name in ("messages", "logical_bytes", "wire_bytes")
        }
        for name, want in expect.items():
            if got[name] != want:
                raise ConformanceFailure(
                    f"trace[{mode}]: tracer {name}={got[name]} but stats say {want} "
                    f"(all counters: {got} vs {expect})"
                )

    def _run(self, sc: Scenario) -> dict[str, int]:
        """Run the scenario's exchange; return stats-side expected totals."""
        mode = sc.params["mode"]
        if mode == "virtual":
            from repro.fft.reshape import ReshapePlan, ReshapeStats
            from repro.runtime.virtual import VirtualWorld

            shape = tuple(sc.params["shape"])
            p = sc.params["nranks"]
            plan = ReshapePlan(
                _decomp(sc.params["src"], shape, p), _decomp(sc.params["dst"], shape, p)
            )
            rng = np.random.default_rng(sc.params["data_seed"])
            x = rng.standard_normal(shape)
            stats = ReshapeStats()
            plan.run_virtual(VirtualWorld(p), scatter_global(plan.src, x), stats=stats)
            return {
                "messages": stats.messages,
                "logical_bytes": stats.logical_bytes,
                "wire_bytes": stats.wire_bytes,
            }

        from repro.runtime.thread_rt import ThreadWorld

        p = sc.params["nranks"]
        send = make_send_matrix(sc.params["sizes"], "float64", sc.params["data_seed"])
        if mode == "pairwise":
            from repro.collectives import pairwise_alltoallv

            def kernel(comm):
                pairwise_alltoallv(comm, send[comm.rank])

            ThreadWorld(p).run(kernel)
            total = sum(arr.nbytes for row in send for arr in row)
            return {"messages": p * p, "logical_bytes": total, "wire_bytes": total}

        from repro.collectives import CompressedOscAlltoallv
        from repro.compression.base import IdentityCodec
        from repro.compression.mantissa import MantissaTrimCodec
        from repro.compression.truncation import CastCodec

        codec = {
            "identity": IdentityCodec(),
            "trim": MantissaTrimCodec(30),
            "cast": CastCodec("fp32"),
        }[sc.params["codec"]]

        def kernel(comm):
            op = CompressedOscAlltoallv(comm, codec)
            try:
                op(send[comm.rank])
            finally:
                op.free()
            return op.last_stats

        per_rank = ThreadWorld(p).run(kernel)
        return {
            "messages": sum(s.sent_messages for s in per_rank),
            "logical_bytes": sum(s.original_bytes for s in per_rank),
            "wire_bytes": sum(s.wire_bytes for s in per_rank),
        }

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        if sc.params["mode"] == "virtual":
            return
        p = sc.params["nranks"]
        if p > 2:
            for drop in range(p - 1, -1, -1):
                yield sc.with_params(nranks=p - 1, sizes=_shrunk_matrix(sc.params["sizes"], drop))
        if any(c > 1 for row in sc.params["sizes"] for c in row):
            yield sc.with_params(sizes=[[c // 2 for c in row] for row in sc.params["sizes"]])


# -- 7. fault-plan recovery -------------------------------------------------------------


class FaultsProperty(Property):
    name = "faults"

    def generate(self, rng: random.Random) -> Scenario:
        p = rng.choice([2, 3, 4])
        rules = []
        for _ in range(rng.choice([1, 1, 2])):
            kind = rng.choice(["bitflip", "bitflip", "codec", "straggle"])
            rule: dict = {"kind": kind, "rank": rng.randrange(p)}
            if kind == "bitflip":
                rule["peer"] = rng.randrange(p)
                rule["bits"] = rng.choice([1, 2, 3])
            elif kind == "straggle":
                rule["delay"] = 0.002
            rules.append(rule)
        sizes = draw_sizes_matrix(rng, p, max_items=32)
        for rule in rules:  # make sure targeted pairs actually carry data
            if rule["kind"] == "bitflip":
                s, d = rule["rank"], rule["peer"]
                sizes[s][d] = max(sizes[s][d], 4)
        return Scenario(
            self.name,
            {
                "nranks": p,
                "sizes": sizes,
                "rules": rules,
                "plan_seed": rng.randrange(2**16),
                "codec": rng.choice(["identity", "lossless"]),
                "data_seed": draw_data_seed(rng),
            },
        )

    def check(self, sc: Scenario) -> None:
        from repro.collectives import CompressedOscAlltoallv
        from repro.compression.base import IdentityCodec
        from repro.compression.lossless import ShuffleZlibCodec
        from repro.faults import FaultPlan, FaultRule, RetryPolicy
        from repro.runtime.thread_rt import ThreadWorld

        p = sc.params["nranks"]
        send = make_send_matrix(sc.params["sizes"], "float64", sc.params["data_seed"])
        want = expected_recv(send)
        plan = FaultPlan(
            [FaultRule(**rule) for rule in sc.params["rules"]], seed=sc.params["plan_seed"]
        )
        codec = IdentityCodec() if sc.params["codec"] == "identity" else ShuffleZlibCodec(level=1)
        policy = RetryPolicy(max_attempts=2, base_delay=1e-4, max_delay=1e-3)

        def kernel(comm):
            op = CompressedOscAlltoallv(comm, codec, retry_policy=policy)
            try:
                recv = op(send[comm.rank])
            finally:
                op.free()
            return recv, op.last_report

        world = ThreadWorld(p, faults=plan)
        results = world.run(kernel)
        for d in range(p):
            recv, _ = results[d]
            for s in range(p):
                assert_blocks_equal(
                    recv[s], want[d][s], where=f"faults: rank {d} <- rank {s}"
                )
        flips = world.injector.injected("bitflip") if world.injector is not None else 0
        if flips:
            reports = [results[d][1] for d in range(p)]
            if all(r.clean for r in reports):
                raise ConformanceFailure(
                    f"faults: {flips} bitflip(s) fired but every resilience report is clean"
                )

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        if len(sc.params["rules"]) > 1:
            for i in range(len(sc.params["rules"])):
                yield sc.with_params(rules=[r for j, r in enumerate(sc.params["rules"]) if j != i])
        if any(c > 4 for row in sc.params["sizes"] for c in row):
            yield sc.with_params(
                sizes=[[min(c, 4) for c in row] for row in sc.params["sizes"]]
            )


# -- 8. cross-runtime differential ------------------------------------------------------

#: Codec names the runtime differential sweeps: no compression, the
#: lossless fallback, and a genuinely lossy cast.
RUNTIME_CODECS = ("identity", "zlib1_shuffle", "cast_fp32")


class RuntimeProperty(Property):
    """Proc-vs-thread equivalence of one seeded compressed exchange."""

    name = "runtime"

    def generate(self, rng: random.Random) -> Scenario:
        p = rng.choice([1, 2, 2, 3, 3, 4, 5])
        return Scenario(
            self.name,
            {
                "nranks": p,
                "sizes": draw_sizes_matrix(rng, p, max_items=32),
                "dtype": "float64",
                "codec": rng.choice(["identity", "identity", "zlib1_shuffle", "cast_fp32"]),
                "runtimes": ["thread", "proc"],
                "pipeline_chunks": rng.choice([1, 1, 2]),
                "data_seed": draw_data_seed(rng),
            },
        )

    def check(self, sc: Scenario) -> None:
        from repro.collectives import CompressedOscAlltoallv
        from repro.compression.selection import tolerance_of_codec
        from repro.runtime import make_world
        from repro.runtime.shm import fork_available
        from repro.tuning.profile import codec_from_name

        runtimes = [
            r for r in sc.params["runtimes"] if r != "proc" or fork_available()
        ]
        if not runtimes:  # non-POSIX platform: nothing to differentiate
            return
        p = sc.params["nranks"]
        send = make_send_matrix(sc.params["sizes"], sc.params["dtype"], sc.params["data_seed"])
        want = expected_recv(send)
        codec = codec_from_name(sc.params["codec"])
        tol = tolerance_of_codec(codec)
        chunks = sc.params["pipeline_chunks"]

        def kernel(comm):
            op = CompressedOscAlltoallv(comm, codec, pipeline_chunks=chunks)
            try:
                recv = op(send[comm.rank])
            finally:
                op.free()
            return [np.asarray(b) for b in recv]

        per_runtime: dict[str, list] = {}
        for runtime in runtimes:
            per_runtime[runtime] = make_world(runtime, p).run(kernel)

        # Oracle check per runtime: exact when the codec is lossless,
        # normwise within the codec tolerance (x slack) otherwise.
        for runtime, results in per_runtime.items():
            for d in range(p):
                for s in range(p):
                    got, ref = results[d][s], want[d][s]
                    if tol == 0.0:
                        assert_blocks_equal(
                            got, ref, where=f"runtime={runtime}: rank {d} <- rank {s}"
                        )
                    else:
                        err = relative_error(np.asarray(got), np.asarray(ref))
                        if err > tol * TOLERANCE_SLACK:
                            raise ConformanceFailure(
                                f"runtime={runtime}: rank {d} <- rank {s} error "
                                f"{err:.3e} exceeds {tol:.3e} x {TOLERANCE_SLACK}"
                            )

        # Cross-runtime check: the codec pipeline is deterministic, so
        # thread and proc must agree to the byte even for lossy codecs.
        if len(per_runtime) > 1:
            base_name, *other_names = list(per_runtime)
            base = per_runtime[base_name]
            for other_name in other_names:
                other = per_runtime[other_name]
                for d in range(p):
                    for s in range(p):
                        assert_blocks_equal(
                            other[d][s],
                            base[d][s],
                            where=(
                                f"{other_name} vs {base_name}: rank {d} <- rank {s}"
                            ),
                        )

    def shrink(self, sc: Scenario) -> Iterator[Scenario]:
        p = sc.params["nranks"]
        sizes = sc.params["sizes"]
        # one runtime at a time (pins the failure to a substrate vs the oracle)
        if len(sc.params["runtimes"]) > 1:
            for r in sc.params["runtimes"]:
                yield sc.with_params(runtimes=[r])
        if p > 1:
            for drop in range(p - 1, -1, -1):
                yield sc.with_params(nranks=p - 1, sizes=_shrunk_matrix(sizes, drop))
        if any(c > 1 for row in sizes for c in row):
            yield sc.with_params(sizes=[[c // 2 for c in row] for row in sizes])
            yield sc.with_params(sizes=[[min(c, 1) for c in row] for row in sizes])
        if sc.params["codec"] != "identity":
            yield sc.with_params(codec="identity")
        if sc.params["pipeline_chunks"] != 1:
            yield sc.with_params(pipeline_chunks=1)


#: Registry, in the order cases are dealt round-robin.
PROPERTIES: dict[str, Property] = {
    p.name: p
    for p in (
        AlltoallvProperty(),
        BruckProperty(),
        CodecProperty(),
        FftProperty(),
        ReshapeProperty(),
        TraceProperty(),
        FaultsProperty(),
        RuntimeProperty(),
    )
}
