"""Descriptions of binary floating-point formats (paper Table I).

A :class:`FloatFormat` is a ``(sign, exponent, mantissa)`` bit budget plus
derived quantities: smallest subnormal, smallest/largest normal and the
unit round-off.  The registry contains the four formats of Table I
(FP64, FP32, FP16, BFloat16) and :func:`trimmed_format` manufactures the
intermediate "FP64 with ``m`` mantissa bits" formats swept in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PrecisionError

__all__ = [
    "FloatFormat",
    "FP64",
    "FP32",
    "FP16",
    "BF16",
    "get_format",
    "known_formats",
    "trimmed_format",
]


@dataclass(frozen=True)
class FloatFormat:
    """An IEEE-754-style binary floating-point format.

    Parameters
    ----------
    name:
        Human-readable identifier (``"FP64"``, ``"FP64m40"``...).
    exponent_bits:
        Width of the biased exponent field.
    mantissa_bits:
        Number of *stored* fraction bits (the implicit leading 1 is not
        counted, matching IEEE conventions: FP64 has 52, FP32 has 23).
    numpy_dtype:
        The native NumPy dtype when one exists (``None`` for synthetic
        trimmed formats, which are stored inside a float64 container).
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    numpy_dtype: np.dtype | None = field(default=None)

    def __post_init__(self) -> None:
        if self.exponent_bits < 2:
            raise PrecisionError(f"{self.name}: need >= 2 exponent bits")
        if self.mantissa_bits < 1:
            raise PrecisionError(f"{self.name}: need >= 1 mantissa bit")

    # -- derived quantities (Table I columns) --------------------------------

    @property
    def bits(self) -> int:
        """Total storage width in bits (sign + exponent + mantissa)."""
        return 1 + self.exponent_bits + self.mantissa_bits

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_exponent(self) -> int:
        """Smallest normal (unbiased) exponent."""
        return 1 - self.exponent_bias

    @property
    def max_exponent(self) -> int:
        """Largest normal (unbiased) exponent."""
        return self.exponent_bias

    @property
    def smallest_subnormal(self) -> float:
        r"""Table I column :math:`x_{\min,s}` = :math:`2^{e_{\min}-m}`."""
        return float(2.0 ** (self.min_exponent - self.mantissa_bits))

    @property
    def smallest_normal(self) -> float:
        r"""Table I column :math:`x_{\min}` = :math:`2^{e_{\min}}`."""
        return float(2.0**self.min_exponent)

    @property
    def largest_normal(self) -> float:
        r"""Table I column :math:`x_{\max}` = :math:`2^{e_{\max}}(2 - 2^{-m})`."""
        return float(2.0**self.max_exponent * (2.0 - 2.0**-self.mantissa_bits))

    @property
    def unit_roundoff(self) -> float:
        r"""Table I unit round-off :math:`u = 2^{-(m+1)}` (round-to-nearest)."""
        return float(2.0 ** -(self.mantissa_bits + 1))

    @property
    def machine_epsilon(self) -> float:
        """Gap between 1 and the next representable value, ``2 * u``."""
        return 2.0 * self.unit_roundoff

    def compression_rate_from(self, other: "FloatFormat") -> float:
        """Compression rate achieved by storing ``other`` data in this format.

        E.g. ``FP32.compression_rate_from(FP64) == 2.0`` (Section IV-A).
        """
        return other.bits / self.bits

    def describe(self) -> dict[str, float | int | str]:
        """Columns of Table I for this format, as a plain dict."""
        return {
            "name": self.name,
            "bits": self.bits,
            "xmin_subnormal": self.smallest_subnormal,
            "xmin_normal": self.smallest_normal,
            "xmax": self.largest_normal,
            "unit_roundoff": self.unit_roundoff,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}(bits={self.bits}, e={self.exponent_bits}, "
            f"m={self.mantissa_bits}, u={self.unit_roundoff:.2e})"
        )


#: IEEE binary64 — the working precision of the paper's reference FFT.
FP64 = FloatFormat("FP64", exponent_bits=11, mantissa_bits=52, numpy_dtype=np.dtype(np.float64))
#: IEEE binary32.
FP32 = FloatFormat("FP32", exponent_bits=8, mantissa_bits=23, numpy_dtype=np.dtype(np.float32))
#: IEEE binary16 (half precision).
FP16 = FloatFormat("FP16", exponent_bits=5, mantissa_bits=10, numpy_dtype=np.dtype(np.float16))
#: bfloat16: FP32 exponent range with an 8-bit mantissa budget (7 stored bits).
BF16 = FloatFormat("BFloat16", exponent_bits=8, mantissa_bits=7, numpy_dtype=None)

_REGISTRY: dict[str, FloatFormat] = {
    "fp64": FP64,
    "float64": FP64,
    "double": FP64,
    "fp32": FP32,
    "float32": FP32,
    "single": FP32,
    "fp16": FP16,
    "float16": FP16,
    "half": FP16,
    "bf16": BF16,
    "bfloat16": BF16,
}


def known_formats() -> tuple[FloatFormat, ...]:
    """The four named formats of Table I, widest first."""
    return (FP64, FP32, FP16, BF16)


def get_format(name: str | FloatFormat) -> FloatFormat:
    """Look a format up by (case-insensitive) name; passes formats through.

    >>> get_format("fp32").bits
    32
    """
    if isinstance(name, FloatFormat):
        return name
    try:
        return _REGISTRY[name.strip().lower()]
    except KeyError:
        raise PrecisionError(
            f"unknown float format {name!r}; known: {sorted(set(_REGISTRY))}"
        ) from None


def trimmed_format(mantissa_bits: int) -> FloatFormat:
    """An FP64-exponent format keeping only ``mantissa_bits`` fraction bits.

    This is the "truncation" format of Section IV-B / Fig. 2: the value
    keeps binary64's exponent field (11 bits) but only ``mantissa_bits``
    of the 52 fraction bits.  ``trimmed_format(52)`` is FP64 itself and
    ``trimmed_format(23)`` has FP32's significand accuracy while keeping
    FP64's range (total 35 bits).
    """
    if not 1 <= mantissa_bits <= 52:
        raise PrecisionError(f"mantissa_bits must be in [1, 52], got {mantissa_bits}")
    if mantissa_bits == 52:
        return FP64
    return FloatFormat(f"FP64m{mantissa_bits}", exponent_bits=11, mantissa_bits=mantissa_bits)
