"""Regeneration of paper Table I.

Table I lists, for BFloat16/FP16/FP32/FP64: the storage width, the
smallest subnormal, the smallest and largest normals, the unit round-off,
and the peak Tflop/s of NVIDIA V100 and AMD MI100 GPUs in that precision.
The format-derived columns are *computed* from
:class:`repro.precision.formats.FloatFormat`; the peaks are hardware
datasheet constants carried by the machine specs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.precision.formats import BF16, FP16, FP32, FP64, FloatFormat

__all__ = ["TableIRow", "table1_rows", "format_table1"]

#: Peak Tflop/s per (gpu, format name) from the paper's Table I.
PEAK_TFLOPS: dict[str, dict[str, float | None]] = {
    "V100": {"BFloat16": None, "FP16": 125.0, "FP32": 15.7, "FP64": 7.8},
    "MI100": {"BFloat16": 92.0, "FP16": 184.0, "FP32": 23.0, "FP64": 11.5},
}


@dataclass(frozen=True)
class TableIRow:
    """One row of Table I."""

    fmt: FloatFormat
    peak_v100_tflops: float | None
    peak_mi100_tflops: float | None

    def as_dict(self) -> dict[str, object]:
        d = self.fmt.describe()
        d["peak_v100_tflops"] = self.peak_v100_tflops
        d["peak_mi100_tflops"] = self.peak_mi100_tflops
        return d


def table1_rows() -> list[TableIRow]:
    """All four rows of Table I, in the paper's order (narrowest first)."""
    rows = []
    for fmt in (BF16, FP16, FP32, FP64):
        rows.append(
            TableIRow(
                fmt,
                PEAK_TFLOPS["V100"][fmt.name],
                PEAK_TFLOPS["MI100"][fmt.name],
            )
        )
    return rows


def format_table1() -> str:
    """Render Table I as fixed-width text (one line per format)."""
    header = (
        f"{'Arithmetic':<10} {'bits':>4} {'x_min,s':>10} {'x_min':>10} "
        f"{'x_max':>10} {'roundoff':>10} {'V100':>7} {'MI100':>7}"
    )
    lines = [header, "-" * len(header)]
    for row in table1_rows():
        f = row.fmt
        v100 = "N/A" if row.peak_v100_tflops is None else f"{row.peak_v100_tflops:g}"
        mi100 = "N/A" if row.peak_mi100_tflops is None else f"{row.peak_mi100_tflops:g}"
        lines.append(
            f"{f.name:<10} {f.bits:>4d} {f.smallest_subnormal:>10.1e} "
            f"{f.smallest_normal:>10.1e} {f.largest_normal:>10.1e} "
            f"{f.unit_roundoff:>10.1e} {v100:>7} {mi100:>7}"
        )
    return "\n".join(lines)
