"""Vectorised mantissa truncation of binary64 arrays.

The paper's cheapest compressor is *truncation*: re-rounding an FP64 value
to a representation with fewer mantissa bits (Section IV-A, Fig. 2).  We
implement it as round-to-nearest-even directly on the ``uint64`` bit view,
which is exactly what a GPU truncation kernel does and is fully
vectorised in NumPy.

Complex arrays are handled by viewing them as interleaved real pairs, so
the same kernels serve the FFT data path (complex128 messages).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrecisionError
from repro.precision.formats import FP64, FloatFormat, get_format

__all__ = ["trim_mantissa", "cast_via_format", "roundtrip_error"]

_SIGN_MASK = np.uint64(0x8000_0000_0000_0000)
_EXP_MASK = np.uint64(0x7FF0_0000_0000_0000)


def _as_float64_view(x: np.ndarray) -> np.ndarray:
    """View a float64/complex128 array as a flat float64 array (no copy)."""
    if x.dtype == np.float64:
        return x.reshape(-1)
    if x.dtype == np.complex128:
        return x.reshape(-1).view(np.float64)
    raise PrecisionError(f"expected float64 or complex128 data, got {x.dtype}")


def trim_mantissa(x: np.ndarray, mantissa_bits: int, *, rounding: str = "nearest") -> np.ndarray:
    """Round every element of ``x`` to ``mantissa_bits`` stored fraction bits.

    Parameters
    ----------
    x:
        ``float64`` or ``complex128`` array (any shape).
    mantissa_bits:
        Number of fraction bits kept, in ``[1, 52]``.  ``52`` is a no-op.
    rounding:
        ``"nearest"`` (round-to-nearest-even, the default — what a cast
        instruction does) or ``"truncate"`` (chop, a strict upper bound on
        the cast error).

    Returns
    -------
    np.ndarray
        New array of the same dtype/shape with the trimmed values.  The
        result is still *stored* in 64 bits; the byte-level packing that
        realises the compression rate lives in
        :class:`repro.compression.mantissa.MantissaTrimCodec`.

    Notes
    -----
    Rounding is performed on the raw bit pattern: adding the round bit to
    the integer representation correctly carries into the exponent field
    (e.g. ``1.111...b`` rounds up to ``10.0b`` with exponent + 1), which
    matches IEEE round-to-nearest-even semantics, including the overflow-
    to-infinity case.  NaN payloads are preserved unrounded.
    """
    if not 1 <= mantissa_bits <= 52:
        raise PrecisionError(f"mantissa_bits must be in [1, 52], got {mantissa_bits}")
    if rounding not in ("nearest", "truncate"):
        raise PrecisionError(f"unknown rounding mode {rounding!r}")
    x = np.asarray(x)
    out = x.copy()
    if mantissa_bits == 52:
        return out
    flat = _as_float64_view(out)
    bits = flat.view(np.uint64)

    shift = np.uint64(52 - mantissa_bits)
    keep_mask = ~np.uint64((np.uint64(1) << shift) - np.uint64(1))

    special = (bits & _EXP_MASK) == _EXP_MASK  # NaN / Inf: keep untouched
    if rounding == "nearest":
        # round-to-nearest-even: add (half - 1) + LSB-of-kept-field, then chop.
        half = np.uint64(1) << (shift - np.uint64(1))
        lsb = (bits >> shift) & np.uint64(1)
        rounded = bits + (half - np.uint64(1)) + lsb
    else:
        rounded = bits
    rounded &= keep_mask
    bits[...] = np.where(special, bits, rounded)
    return out


def cast_via_format(x: np.ndarray, fmt: str | FloatFormat) -> np.ndarray:
    """Round ``x`` (float64/complex128) *through* ``fmt`` and back to FP64.

    For the native formats this is a NumPy dtype round-trip (including
    FP16's narrow exponent range: overflow saturates to ``inf`` exactly as
    a hardware cast would).  BF16 and synthetic trimmed formats use the
    bit-level kernels: BF16 is FP32 with a 7-bit mantissa, so we round to
    8 significant bits *in FP32* and re-round to the FP32 exponent range.

    This is the semantic used by the Fig. 2 "bits" axis and by the
    mixed-precision (MP 64/32) accuracy study.
    """
    fmt = get_format(fmt)
    x = np.asarray(x)
    if fmt is FP64 or fmt.name == "FP64":
        return x.copy()
    if fmt.numpy_dtype is not None:
        target = fmt.numpy_dtype
        # overflow-to-inf is the defined hardware cast behaviour (e.g.
        # FP16's narrow range); silence NumPy's warning about it.
        with np.errstate(over="ignore"):
            if np.issubdtype(x.dtype, np.complexfloating):
                ctarget = np.complex64 if target == np.float32 else None
                if ctarget is not None:
                    return x.astype(ctarget).astype(np.complex128)
                # complex half: cast the interleaved real view.
                flat = x.reshape(-1).view(np.float64)
                return (
                    flat.astype(target).astype(np.float64).view(np.complex128).reshape(x.shape)
                )
            return x.astype(target).astype(np.float64)
    if fmt.exponent_bits == 11:
        return trim_mantissa(x, fmt.mantissa_bits)
    if fmt.exponent_bits == 8:  # bfloat16-style: FP32 range, short mantissa
        y = trim_mantissa(x, fmt.mantissa_bits)
        if np.issubdtype(y.dtype, np.complexfloating):
            return y.astype(np.complex64).astype(np.complex128)
        return y.astype(np.float32).astype(np.float64)
    raise PrecisionError(f"cannot emulate format {fmt}")


def roundtrip_error(x: np.ndarray, fmt: str | FloatFormat, *, ord: float | None = 2) -> float:
    """Relative error ``||x - cast(x)|| / ||x||`` introduced by one cast.

    A sanity tool: for well-scaled data this is close to the format's
    unit round-off (``~ u / sqrt(3)`` in the 2-norm for uniform inputs).
    """
    x = np.asarray(x)
    y = cast_via_format(x, fmt)
    denom = np.linalg.norm(x.reshape(-1), ord)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm((x - y).reshape(-1), ord) / denom)
