"""Floating-point format zoo and mantissa-truncation kernels.

This package reproduces the numerical machinery behind Section IV of the
paper: the IEEE-style format parameters of Table I (:mod:`~repro.precision.formats`,
:mod:`~repro.precision.table`) and the "truncation" compression primitive —
rounding a binary64 value to a representation with fewer mantissa bits —
used for the Fig. 2 accuracy sweep (:mod:`~repro.precision.rounding`).
"""

from repro.precision.formats import (
    BF16,
    FP16,
    FP32,
    FP64,
    FloatFormat,
    get_format,
    known_formats,
    trimmed_format,
)
from repro.precision.rounding import (
    cast_via_format,
    roundtrip_error,
    trim_mantissa,
)

__all__ = [
    "FloatFormat",
    "FP64",
    "FP32",
    "FP16",
    "BF16",
    "get_format",
    "known_formats",
    "trimmed_format",
    "trim_mantissa",
    "cast_via_format",
    "roundtrip_error",
]
