"""Simulated GPU device: streams, kernels and the pipeline counter trick.

Section V-B pipelines compression with communication through CUDA-stream
ordering: "instead of using CUDA events to track the completed kernels,
we simply call a second kernel on the same stream to update a memory
location that indicates the current status of the compression.  Thus the
communication of the compressed chunks can be triggered by the CPU by
watching the updates of the shared counter."

This package reproduces that mechanism functionally:
:class:`~repro.gpudev.stream.Stream` executes enqueued kernels strictly
in order (with modelled completion timestamps), and
:class:`~repro.gpudev.pipeline.CompressionPipeline` enqueues
(compress chunk k, bump counter) pairs and lets a host loop issue the
put for every chunk whose counter tick has fired — the exact
progress-tracking pattern of the paper, testable without CUDA.
"""

from repro.gpudev.pipeline import CompressionPipeline, PipelineTrace
from repro.gpudev.stream import Kernel, Stream

__all__ = ["Stream", "Kernel", "CompressionPipeline", "PipelineTrace"]
