"""The Section V-B compression/communication pipeline, reproduced.

For each outgoing message the routine "starts by splitting the data into
chunks and submits a kernel for each chunk on the same stream", plus a
tiny counter-update kernel after each one.  The host then polls the
counter and puts every chunk that has been compressed — compression of
chunk ``k+1`` overlaps the transfer of chunk ``k``.

:class:`CompressionPipeline` implements exactly that against the
simulated :class:`~repro.gpudev.stream.Stream`, producing both the
compressed fragments (real bytes, via a real codec) and a
:class:`PipelineTrace` with the modelled timeline, which tests compare
against the paper's cost claim: *total ≈ compress(first chunk) +
transfer(all compressed bytes)*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression.base import Codec, CompressedMessage
from repro.errors import ModelError
from repro.gpudev.stream import Stream
from repro.machine.spec import GpuSpec
from repro.netsim.kernels import compression_kernel_time

__all__ = ["CompressionPipeline", "PipelineTrace"]


@dataclass
class PipelineTrace:
    """Timeline of one pipelined message (simulated seconds)."""

    chunk_compress_done: list[float] = field(default_factory=list)
    chunk_put_start: list[float] = field(default_factory=list)
    chunk_put_done: list[float] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.chunk_put_done[-1] if self.chunk_put_done else 0.0

    @property
    def first_compress_s(self) -> float:
        return self.chunk_compress_done[0] if self.chunk_compress_done else 0.0


class CompressionPipeline:
    """Chunked compress-then-put pipeline on one simulated stream.

    Parameters
    ----------
    gpu:
        Device model (kernel durations).
    codec:
        Real codec used to produce the fragment payloads.
    link_bytes_per_s:
        Modelled wire bandwidth the puts see.
    chunks:
        Number of fragments per message.
    """

    def __init__(
        self,
        gpu: GpuSpec,
        codec: Codec,
        *,
        link_bytes_per_s: float,
        chunks: int = 8,
    ) -> None:
        if chunks < 1:
            raise ModelError(f"chunks must be >= 1, got {chunks}")
        if link_bytes_per_s <= 0:
            raise ModelError("link bandwidth must be positive")
        self.gpu = gpu
        self.codec = codec
        self.link = float(link_bytes_per_s)
        self.chunks = int(chunks)

    def run(self, data: np.ndarray) -> tuple[list[CompressedMessage], PipelineTrace]:
        """Compress+send ``data`` chunk by chunk; returns fragments + trace.

        The host loop polls a shared counter bumped by a marker kernel
        after every compression kernel — the paper's progress-tracking
        trick — and issues the put for each newly ready chunk.  Puts and
        kernels overlap: the wire busy-until time advances independently
        of the stream clock.
        """
        data = np.ascontiguousarray(data)
        fragments = [c for c in np.array_split(data.reshape(-1), self.chunks) if c.size]
        stream = Stream("compress")
        counter = {"ready": 0}  # the pinned-memory chunk counter
        compressed: list[CompressedMessage | None] = [None] * len(fragments)
        rate = self.codec.rate or 1.0

        for i, frag in enumerate(fragments):
            def compress(i: int = i, frag: np.ndarray = frag) -> None:
                compressed[i] = self.codec.compress(frag)

            stream.launch(
                f"compress[{i}]",
                compress,
                compression_kernel_time(
                    self.gpu, frag.nbytes, rate, codec_name=self.codec.name
                ),
            )
            # the tiny marker kernel bumping the shared counter
            stream.launch(f"mark[{i}]", lambda: counter.__setitem__("ready", counter["ready"] + 1), 0.0)

        trace = PipelineTrace()
        wire_free_at = 0.0
        sent = 0
        while sent < len(fragments):
            if counter["ready"] == sent:
                # host waits for the device: let the stream progress one
                # compress+mark pair.
                stream.progress(max_kernels=2)
                continue
            # chunk `sent` is compressed — put it on the wire.
            msg = compressed[sent]
            assert msg is not None
            ready_at = stream.clock_s
            trace.chunk_compress_done.append(ready_at)
            start = max(ready_at, wire_free_at)
            done = start + msg.nbytes / self.link
            trace.chunk_put_start.append(start)
            trace.chunk_put_done.append(done)
            wire_free_at = done
            sent += 1

        stream.synchronize()
        return [m for m in compressed if m is not None], trace
