"""A CUDA-stream stand-in: strictly ordered kernel execution with timing.

Kernels enqueued on a :class:`Stream` run in submission order; each
carries a modelled duration (from :mod:`repro.netsim.kernels`-style cost
functions) and the stream tracks the simulated clock at which every
kernel completes.  ``synchronize()`` runs everything still queued.

The scheduler is deliberately *lazy*: kernels execute on
``progress()`` / ``synchronize()`` calls, which lets tests interleave
host-side polling with device-side progress exactly like a CPU thread
watching a pinned-memory counter while a GPU crunches chunks.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ModelError

__all__ = ["Kernel", "Stream"]


@dataclass
class Kernel:
    """One device kernel: a host callable plus a modelled duration."""

    name: str
    fn: Callable[[], Any]
    duration_s: float = 0.0
    #: Set when the kernel has executed.
    done: bool = False
    #: Simulated completion timestamp (set on execution).
    completed_at: float = field(default=float("nan"))

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ModelError(f"kernel {self.name!r}: negative duration")


class Stream:
    """Strictly in-order kernel queue with a simulated clock."""

    def __init__(self, name: str = "stream0") -> None:
        self.name = name
        self._queue: deque[Kernel] = deque()
        self._log: list[Kernel] = []
        self.clock_s = 0.0

    # -- submission ---------------------------------------------------------------

    def launch(self, name: str, fn: Callable[[], Any], duration_s: float = 0.0) -> Kernel:
        """Enqueue a kernel; returns its handle (not yet executed)."""
        k = Kernel(name, fn, duration_s)
        self._queue.append(k)
        return k

    # -- progress -----------------------------------------------------------------

    def progress(self, max_kernels: int | None = 1) -> int:
        """Execute up to ``max_kernels`` queued kernels (None = all).

        Returns the number executed.  This models the device making
        progress while the host does other work between polls.
        """
        executed = 0
        while self._queue and (max_kernels is None or executed < max_kernels):
            k = self._queue.popleft()
            k.fn()
            self.clock_s += k.duration_s
            k.done = True
            k.completed_at = self.clock_s
            self._log.append(k)
            executed += 1
        return executed

    def synchronize(self) -> float:
        """Run everything queued; returns the simulated clock."""
        self.progress(max_kernels=None)
        return self.clock_s

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def history(self) -> list[Kernel]:
        """Executed kernels, in completion order."""
        return list(self._log)
