"""Declarative machine specifications.

All performance modelling in :mod:`repro.netsim` is parameterised by a
:class:`MachineSpec`; the :data:`SUMMIT` preset carries the numbers the
paper reports or that are public datasheet values for the machine:

* 6 GPUs (V100) per node, one MPI rank per GPU (Section VI);
* 25 GB/s theoretical inter-node bandwidth per node (2 IB lanes);
* 50 GB/s intra-node bandwidth (NVLink, the paper's Section VI-A);
* V100 peak flop rates per precision from Table I.

Latency-type constants are not printed in the paper; we use typical
values for IB EDR + UCX rendezvous vs. RMA put, and expose them so the
ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ModelError

__all__ = ["GpuSpec", "NetworkSpec", "MachineSpec", "SUMMIT", "summit_spec", "laptop_spec"]


@dataclass(frozen=True)
class GpuSpec:
    """Per-GPU compute capabilities.

    ``*_tflops`` are peak rates (Table I); ``fft_efficiency`` is the
    fraction of peak a batched 1-D FFT sustains (cuFFT on V100 reaches
    ~10 % of FP64 peak for large batched transforms — FFTs are memory
    bound).  ``membw_gbs`` is device memory bandwidth, which bounds
    pack/unpack and truncation kernels; ``kernel_launch_us`` is the
    per-kernel launch latency used by the compression pipeline model.
    """

    name: str = "V100"
    fp64_tflops: float = 7.8
    fp32_tflops: float = 15.7
    fp16_tflops: float = 125.0
    membw_gbs: float = 900.0
    fft_efficiency: float = 0.10
    kernel_launch_us: float = 5.0

    def fft_tflops(self, precision: str) -> float:
        """Sustained Tflop/s of the local batched FFT in ``precision``."""
        peak = {"fp64": self.fp64_tflops, "fp32": self.fp32_tflops, "fp16": self.fp16_tflops}
        try:
            return peak[precision.lower()] * self.fft_efficiency
        except KeyError:
            raise ModelError(f"unknown precision {precision!r}") from None


@dataclass(frozen=True)
class NetworkSpec:
    """Network cost parameters.

    ``internode_gbs`` is the achievable one-direction injection bandwidth
    of a node: the paper quotes "two Infiniband lanes for a total
    theoretical bandwidth of 25 GB/s", i.e. 12.5 GB/s each way, which is
    the quantity an all-to-all's sends see.  ``intranode_gbs`` is the
    GPU-to-GPU bandwidth inside a node (50 GB/s, Section VI-A).
    Two-sided messages above ``eager_limit`` pay a rendezvous handshake
    (``rendezvous_us``, one round trip); one-sided puts only pay
    ``put_overhead_us``.  This asymmetry is the mechanism behind Fig. 3
    (Section V: the handshake is "an unnecessary overhead for such a
    synchronous algorithm").
    """

    internode_gbs: float = 12.5
    intranode_gbs: float = 50.0
    base_latency_us: float = 1.5
    rendezvous_us: float = 8.0
    put_overhead_us: float = 0.6
    eager_limit: int = 8192
    #: Multiplicative bandwidth penalty per doubling of the node count for
    #: the *non*-topology-aware collective (congestion from unordered
    #: message storms: collisions and rerouting, Section V-A).
    congestion_per_doubling: float = 0.07

    def link_gbs(self, intra: bool) -> float:
        return self.intranode_gbs if intra else self.internode_gbs


@dataclass(frozen=True)
class MachineSpec:
    """A cluster: homogeneous nodes, ``gpus_per_node`` ranks per node."""

    name: str
    gpus_per_node: int
    gpu: GpuSpec
    network: NetworkSpec
    max_nodes: int = 4608

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise ModelError("gpus_per_node must be >= 1")
        if self.max_nodes < 1:
            raise ModelError("max_nodes must be >= 1")

    def nodes_for(self, nranks: int) -> int:
        """Node count hosting ``nranks`` ranks (must pack evenly)."""
        if nranks < 1:
            raise ModelError(f"nranks must be >= 1, got {nranks}")
        nodes, rem = divmod(nranks, self.gpus_per_node)
        if rem:
            raise ModelError(
                f"{nranks} ranks do not fill whole {self.gpus_per_node}-GPU nodes"
            )
        if nodes > self.max_nodes:
            raise ModelError(f"{nodes} nodes exceed machine size {self.max_nodes}")
        return nodes

    def node_of(self, rank: int) -> int:
        """Node hosting ``rank`` under the paper's even block mapping."""
        return rank // self.gpus_per_node

    def with_network(self, **kwargs: float | int) -> "MachineSpec":
        """Copy of this machine with network parameters overridden."""
        return replace(self, network=replace(self.network, **kwargs))


def summit_spec() -> MachineSpec:
    """The Summit preset used throughout Section VI."""
    return MachineSpec(name="summit", gpus_per_node=6, gpu=GpuSpec(), network=NetworkSpec())


def laptop_spec() -> MachineSpec:
    """A tiny single-node machine, handy for unit tests of the models."""
    return MachineSpec(
        name="laptop",
        gpus_per_node=2,
        gpu=GpuSpec(name="toy", fp64_tflops=0.1, fp32_tflops=0.2, fp16_tflops=0.4, membw_gbs=50.0),
        network=NetworkSpec(internode_gbs=1.0, intranode_gbs=10.0),
        max_nodes=8,
    )


#: Module-level Summit instance (immutable, safe to share).
SUMMIT = summit_spec()
