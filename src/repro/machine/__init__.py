"""Machine description and process topology (the Summit substitute).

The paper's experiments ran on ORNL Summit: dual-socket nodes, 3 GPUs
per socket (6 per node, one MPI rank per GPU), 50 GB/s intra-node
(NVLink) vs. 25 GB/s total inter-node (2 InfiniBand lanes).  We replace
the physical machine with :class:`~repro.machine.spec.MachineSpec`, a
declarative model consumed by the network simulator, plus the
rank→(node, socket, gpu) topology maps and the node-aware ring
permutations of Section V.
"""

from repro.machine.spec import (
    SUMMIT,
    GpuSpec,
    MachineSpec,
    NetworkSpec,
    laptop_spec,
    summit_spec,
)
from repro.machine.topology import (
    Topology,
    node_aware_permutation,
    ring_schedule,
)

__all__ = [
    "GpuSpec",
    "NetworkSpec",
    "MachineSpec",
    "SUMMIT",
    "summit_spec",
    "laptop_spec",
    "Topology",
    "node_aware_permutation",
    "ring_schedule",
]
