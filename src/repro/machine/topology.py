"""Rank topology and node-aware communication schedules (Section V).

The ring (pairwise) all-to-all sends, at step ``j``, from every rank
``i`` to rank ``(i + j) % p``.  On hierarchical machines the paper
extends this with a *permutation* of ranks "such that no two nodes will
send or expect to receive data from the same remote node" — at every
step, each node talks to exactly one other node, keeping every NIC busy
without contention.  :func:`node_aware_permutation` builds that
permutation and :func:`ring_schedule` expands it into per-step
(src, dst) pair lists consumed by both the collectives and the network
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.machine.spec import MachineSpec

__all__ = ["ShrunkTopology", "Topology", "node_aware_permutation", "ring_schedule"]


@dataclass(frozen=True)
class Topology:
    """Placement of ``nranks`` ranks on a machine (block mapping).

    Rank ``r`` lives on node ``r // gpus_per_node`` and drives local GPU
    ``r % gpus_per_node`` — the paper's "we evenly map one MPI process
    per GPU, which means six MPI processes per node".
    """

    machine: MachineSpec
    nranks: int

    #: Every node hosts exactly ``ranks_per_node`` ranks in block order.
    #: Closed-form schedules (the node-aware ring permutation) require
    #: this; non-uniform placements (:class:`ShrunkTopology`) set it
    #: False and consumers fall back to membership-list walks.
    uniform = True

    def __post_init__(self) -> None:
        self.machine.nodes_for(self.nranks)  # validates

    @property
    def nnodes(self) -> int:
        return self.nranks // self.machine.gpus_per_node

    @property
    def ranks_per_node(self) -> int:
        return self.machine.gpus_per_node

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ModelError(f"rank {rank} out of range [0, {self.nranks})")
        return rank // self.ranks_per_node

    def local_index(self, rank: int) -> int:
        """Index of ``rank`` within its node (= local GPU id)."""
        return rank % self.ranks_per_node

    def ranks_on_node(self, node: int) -> range:
        if not 0 <= node < self.nnodes:
            raise ModelError(f"node {node} out of range [0, {self.nnodes})")
        g = self.ranks_per_node
        return range(node * g, (node + 1) * g)

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)


class ShrunkTopology:
    """Survivor placement after rank failures: the parent map with holes.

    Built when a ULFM shrink removes ranks but the machine stays the
    same: survivor ``i`` of the dense shrunk communicator is parent rank
    ``survivors[i]`` and keeps that rank's node.  Node indices are the
    *parent's* — a node may be left with fewer live ranks than
    ``ranks_per_node``, or none at all (``ranks_on_node`` returns an
    empty tuple).  ``uniform`` is False: schedules that rely on the
    closed-form block mapping (the node-aware ring permutation) must
    fall back, while node-membership walks (the two-level exchange's
    leader election) keep working over the live membership lists.
    """

    uniform = False

    def __init__(self, parent, survivors) -> None:
        self.parent = parent
        self.survivors = tuple(int(r) for r in survivors)
        if len(set(self.survivors)) != len(self.survivors):
            raise ModelError(f"duplicate survivor ranks: {self.survivors}")
        for g in self.survivors:
            if not 0 <= g < parent.nranks:
                raise ModelError(
                    f"survivor rank {g} outside parent topology [0, {parent.nranks})"
                )
        self.nranks = len(self.survivors)
        self.machine = parent.machine
        self._on_node: dict[int, tuple[int, ...]] = {}
        for r, g in enumerate(self.survivors):
            self._on_node.setdefault(parent.node_of(g), ())
            node = parent.node_of(g)
            self._on_node[node] = self._on_node[node] + (r,)

    @property
    def nnodes(self) -> int:
        return self.parent.nnodes

    @property
    def ranks_per_node(self) -> int:
        """The *full* complement per node (the parent's); individual
        nodes may hold fewer live ranks — walk :meth:`ranks_on_node`."""
        return self.parent.ranks_per_node

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nranks:
            raise ModelError(f"rank {rank} out of range [0, {self.nranks})")
        return self.parent.node_of(self.survivors[rank])

    def local_index(self, rank: int) -> int:
        return self.parent.local_index(self.survivors[rank])

    def ranks_on_node(self, node: int) -> tuple[int, ...]:
        if not 0 <= node < self.nnodes:
            raise ModelError(f"node {node} out of range [0, {self.nnodes})")
        return self._on_node.get(node, ())

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)


def node_aware_permutation(topo: Topology) -> np.ndarray:
    """Destination order for every rank: ``perm[i, j]`` = j-th target of rank i.

    Step ``j`` pairs node ``k`` with node ``(k + j // g) % n`` (``g`` ranks
    per node): a node-level ring where all ``g`` ranks of a node finish
    one remote node before moving to the next, and the local peer index
    is rotated by the sender's local index so the ``g`` concurrent
    senders of a node hit *distinct* receivers of the target node.

    Properties (tested):
    * each row is a permutation of ``0..p-1`` (every pair communicates);
    * each column is a permutation (at any step, every rank receives
      exactly one message — no endpoint contention);
    * at any step every node exchanges with exactly one remote node
      (no NIC contention, the Section V requirement).
    """
    p, g, n = topo.nranks, topo.ranks_per_node, topo.nnodes
    i = np.arange(p).reshape(p, 1)  # sender
    j = np.arange(p).reshape(1, p)  # step
    my_node = i // g
    my_local = i % g
    target_node = (my_node + j // g) % n
    target_local = (my_local + j) % g
    perm = target_node * g + target_local
    return perm.astype(np.int64)


def naive_ring_permutation(nranks: int) -> np.ndarray:
    """The classical ring without node awareness: target ``(i + j) % p``."""
    i = np.arange(nranks).reshape(nranks, 1)
    j = np.arange(nranks).reshape(1, nranks)
    return ((i + j) % nranks).astype(np.int64)


def ring_schedule(topo: Topology, *, node_aware: bool = True) -> list[list[tuple[int, int]]]:
    """Expand a ring permutation into per-step ``(src, dst)`` pair lists.

    ``len(result) == nranks`` steps; each step lists one send per rank.
    """
    perm = node_aware_permutation(topo) if node_aware else naive_ring_permutation(topo.nranks)
    p = topo.nranks
    return [[(src, int(perm[src, step])) for src in range(p)] for step in range(p)]
