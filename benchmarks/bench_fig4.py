"""Benchmark + regeneration of Fig. 4 (1024^3 strong scaling)."""

from __future__ import annotations

from repro.experiments import format_fig4, run_fig4
from repro.experiments.paper_data import FIG4_LANDMARKS


def test_fig4_model_sweep(benchmark):
    rows = benchmark(run_fig4)
    print("\n=== Fig. 4 (regenerated): heFFTe 1024^3 strong scaling ===")
    print(format_fig4(rows))
    by_gpus = {r.gpus: r for r in rows}

    target, tol = FIG4_LANDMARKS["fp16_tflops@1536"]
    assert abs(by_gpus[1536].tflops["FP64->FP16"] - target) <= tol * target

    target, tol = FIG4_LANDMARKS["fp32comp_speedup@1536"]
    assert abs(by_gpus[1536].speedup["FP64->FP32"] - target) <= tol * target

    # "we exceed a 4x speedup up to 384 GPUs"
    for p in (48, 96, 192, 384):
        assert by_gpus[p].speedup["FP64->FP16"] > 4.0
    # latency dominance: speedup declines from its peak towards 1536
    assert by_gpus[1536].speedup["FP64->FP16"] < by_gpus[384].speedup["FP64->FP16"]


def test_fig4_communication_share(benchmark):
    """The intro's motivation: >95% of time in communication at scale."""
    from repro.machine import SUMMIT
    from repro.netsim import fft3d_cost

    cost = benchmark(lambda: fft3d_cost(SUMMIT, 1536, 1024, "FP64"))
    print(f"\nFP64 @ 1536 GPUs: comm fraction = {cost.comm_fraction:.3f}")
    assert cost.comm_fraction > 0.9
