"""Ablation: latency/bandwidth crossovers of the algorithm zoo.

Two crossovers frame the paper's Fig. 4 story:

* *compression break-even* — the per-pair message size below which the
  kernels + latency cost more than the saved wire time (the regime the
  FP16 curve enters beyond 384 GPUs);
* *Bruck vs ring* — log-p start-ups vs log-p/2 volume blow-up.
"""

from __future__ import annotations

import pytest

from repro.machine import SUMMIT
from repro.netsim import (
    bruck_alltoall_cost,
    bruck_ring_crossover_bytes,
    compression_breakeven_bytes,
    osc_alltoall_cost,
)


def test_compression_breakeven_sweep(benchmark):
    def sweep():
        return {p: compression_breakeven_bytes(SUMMIT, p, rate=4.0) for p in (24, 96, 384, 1536)}

    table = benchmark(sweep)
    print("\n=== compression (rate 4) break-even message size ===")
    for p, b in table.items():
        print(f"  {p:>5d} GPUs: compression pays above {b:>8d} B per pair")
    # Fig. 4 context: at 1536 GPUs and 1024^3 the per-pair message is
    # ~7.3 KB compressed to ~1.8 KB: comfortably above break-even, but
    # the margin is thinning — the observed taper.
    assert all(b < 7300 for b in table.values())


def test_bruck_ring_crossover_sweep(benchmark):
    def sweep():
        return {p: bruck_ring_crossover_bytes(SUMMIT, p) for p in (24, 96, 384, 1536)}

    table = benchmark(sweep)
    print("\n=== Bruck vs node-aware ring crossover ===")
    for p, b in table.items():
        print(f"  {p:>5d} GPUs: Bruck wins below {b:>8d} B per pair")
    assert all(16 <= b <= 1_000_000 for b in table.values())


@pytest.mark.parametrize("msg", [64, 4096, 262144])
def test_algorithm_ordering_by_size(msg):
    """Sanity: tiny messages -> Bruck; big messages -> ring."""
    bruck = bruck_alltoall_cost(SUMMIT, 384, msg).total_s
    ring = osc_alltoall_cost(SUMMIT, 384, msg).total_s
    if msg <= 64:
        assert bruck < ring
    if msg >= 262144:
        assert ring < bruck
