"""Benchmark + regeneration of Fig. 2 (accuracy vs mantissa bits)."""

from __future__ import annotations

from repro.experiments import format_fig2, run_fig2


def test_fig2_sweep(benchmark, full_scale):
    shape = (32, 32, 32) if full_scale else (16, 16, 16)
    bits = None if full_scale else [52, 44, 36, 28, 23]
    rows = benchmark.pedantic(
        lambda: run_fig2(shape=shape, nranks=8, mantissa_bits=bits), rounds=1, iterations=1
    )
    print("\n=== Fig. 2 (regenerated): accuracy vs wire bits ===")
    print(format_fig2(rows))
    by_label = {r.label: r for r in rows}
    # the figure's two headline features:
    assert by_label["m=52"].error < 1e-14
    assert by_label["MP 64/32"].error < by_label["FP32"].error
