"""Extension study: weak scaling (constant cells per GPU).

The paper shows strong scaling only; this bench grows problem and
machine together and watches where compression stops carrying the weak
efficiency — the Fig. 4 latency taper taken to its logical end.
"""

from __future__ import annotations

from repro.experiments.weak import format_weak_scaling, run_weak_scaling


def test_weak_scaling_sweep(benchmark):
    rows = benchmark(run_weak_scaling)
    print("\n=== weak scaling (constant N^3 per GPU) ===")
    print(format_weak_scaling(rows))
    # compressed transforms hold weak efficiency far better than FP64
    # through the paper's scales...
    mid = [r for r in rows if 384 <= r.gpus <= 3072]
    assert all(r.efficiency["FP64->FP32"] > r.efficiency["FP64"] for r in mid)
    # ...and the advantage dies in the extreme latency-bound regime.
    if rows[-1].gpus > 10_000:
        assert rows[-1].efficiency["FP64->FP16"] < rows[-2].efficiency["FP64->FP16"]
