"""Core-library benchmarks: the distributed FFT data path itself.

These measure the *real* Python execution of the virtually-distributed
transform (pack/compress/exchange/decompress/unpack + pocketfft), which
is what CI watches for performance regressions of this repository —
distinct from the modelled Summit numbers of bench_fig4.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CastCodec, MantissaTrimCodec, ZfpLikeCodec
from repro.fft import Fft3d
from repro.runtime import VirtualWorld


def _field(n: int) -> np.ndarray:
    return np.random.default_rng(1).random((n, n, n))


def test_fft_forward_exact(benchmark):
    plan = Fft3d((32, 32, 32), 8)
    x = _field(32)
    benchmark(plan.forward, x)


@pytest.mark.parametrize(
    "codec",
    [CastCodec("fp32"), CastCodec("fp16", scaled=True), MantissaTrimCodec(36), ZfpLikeCodec(rate=4.0)],
    ids=lambda c: c.name,
)
def test_fft_forward_compressed(benchmark, codec):
    plan = Fft3d((32, 32, 32), 8, codec=codec)
    x = _field(32)
    benchmark(plan.forward, x)
    print(
        f"\n{codec.name}: wire rate {plan.last_stats.achieved_rate:.2f}x "
        f"({plan.last_stats.wire_bytes / 1e6:.2f} MB on the wire)"
    )


def test_fft_traffic_accounting(benchmark):
    """Traffic reduction is exactly the codec rate (Section IV-B model)."""

    def run():
        w_plain, w_comp = VirtualWorld(8), VirtualWorld(8)
        x = _field(32)
        Fft3d((32, 32, 32), 8).forward(x, world=w_plain)
        Fft3d((32, 32, 32), 8, codec=CastCodec("fp32")).forward(x, world=w_comp)
        return w_plain.traffic.total_bytes, w_comp.traffic.total_bytes

    plain, comp = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nexact wire: {plain / 1e6:.2f} MB, compressed wire: {comp / 1e6:.2f} MB")
    assert plain == pytest.approx(2 * comp, rel=0.01)


def test_local_fft_batch(benchmark):
    """The compute kernel in isolation (one pencil phase)."""
    from repro.fft import batched_fft

    block = np.random.default_rng(2).random((64, 64, 64)) + 0j
    benchmark(batched_fft, block, 0)
