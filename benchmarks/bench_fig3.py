"""Benchmark + regeneration of Fig. 3 (all-to-all node bandwidth).

Two parts: the modelled Summit-scale sweep (the figure itself), and a
*real* exchange on the thread runtime at small scale, benchmarking the
three algorithms against each other — the data-path cross-validation of
the model's subject.
"""

from __future__ import annotations

import numpy as np

from repro.collectives import osc_alltoallv, pairwise_alltoallv
from repro.experiments import format_fig3, run_fig3
from repro.experiments.paper_data import FIG3_LANDMARKS
from repro.runtime import ThreadWorld


def test_fig3_model_sweep(benchmark):
    rows = benchmark(run_fig3)
    print("\n=== Fig. 3 (regenerated): node bandwidth, 80 KB/pair ===")
    print(format_fig3(rows))
    by_gpus = {r.gpus: r for r in rows}
    target, tol = FIG3_LANDMARKS["classical@1536"]
    assert abs(by_gpus[1536].classical_gbs - target) <= tol * target
    target, tol = FIG3_LANDMARKS["osc@1536"]
    assert abs(by_gpus[1536].osc_gbs - target) <= tol * target


def _exchange(algorithm: str, nranks: int, nbytes: int) -> None:
    chunk_items = nbytes // 8

    def kernel(comm):
        send = [np.ones(chunk_items) for _ in range(comm.size)]
        if algorithm == "reference":
            return comm.alltoallv(send)
        if algorithm == "pairwise":
            return pairwise_alltoallv(comm, send)
        return osc_alltoallv(comm, send)

    ThreadWorld(nranks).run(kernel)


def test_real_alltoall_reference(benchmark):
    benchmark.pedantic(lambda: _exchange("reference", 8, 80_000), rounds=3, iterations=1)


def test_real_alltoall_pairwise(benchmark):
    benchmark.pedantic(lambda: _exchange("pairwise", 8, 80_000), rounds=3, iterations=1)


def test_real_alltoall_osc(benchmark):
    benchmark.pedantic(lambda: _exchange("osc", 8, 80_000), rounds=3, iterations=1)
