"""Ablation: node-aware ring permutation on/off (Section V).

Model level: the congestion penalty the permutation avoids.  Runtime
level: real pairwise exchanges with and without the permutation on the
thread runtime (data-path identical, so times should match — the
permutation is about *networks*, which the model covers).
"""

from __future__ import annotations

import numpy as np

from repro.collectives import pairwise_alltoallv
from repro.machine import SUMMIT, Topology
from repro.netsim.alltoall_model import (
    classical_alltoall_cost,
    congestion_factor,
    osc_alltoall_cost,
)
from repro.runtime import ThreadWorld


def test_model_congestion_ablation(benchmark):
    def sweep():
        return [
            (
                p,
                classical_alltoall_cost(SUMMIT, p, 80_000).node_bandwidth_gbs,
                osc_alltoall_cost(SUMMIT, p, 80_000).node_bandwidth_gbs,
            )
            for p in (24, 96, 384, 1536)
        ]

    rows = benchmark(sweep)
    print("\n=== permutation ablation (model): unordered vs node-aware ===")
    for p, unordered, aware in rows:
        n = p // 6
        print(
            f"  {p:>5d} GPUs: unordered {unordered:5.2f} GB/s (congestion x"
            f"{congestion_factor(n, 80_000):4.2f})  node-aware {aware:5.2f} GB/s"
        )
    # the gap must widen with scale
    gaps = [aware / unordered for _, unordered, aware in rows]
    assert gaps[-1] > gaps[0]


def _pairwise(nranks: int, node_aware: bool) -> None:
    topo = Topology(SUMMIT, nranks) if node_aware else None

    def kernel(comm):
        send = [np.ones(1024) for _ in range(comm.size)]
        return pairwise_alltoallv(comm, send, topology=topo)

    ThreadWorld(nranks).run(kernel)


def test_real_pairwise_naive(benchmark):
    benchmark.pedantic(lambda: _pairwise(6, False), rounds=3, iterations=1)


def test_real_pairwise_node_aware(benchmark):
    benchmark.pedantic(lambda: _pairwise(6, True), rounds=3, iterations=1)
