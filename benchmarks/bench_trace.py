"""Benchmark the tracing layer itself + emit the BENCH_*.json artefact.

Two concerns: (1) tracing disabled must be effectively free on the hot
paths (the observability layer ships always-on in the call sites), and
(2) one traced heFFTe-style run per benchmark session is archived as a
machine-readable ``BENCH_trace_smoke.json`` — the seed of the repo's
performance trajectory (CI uploads its own via ``python -m repro trace``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.fft.plan import Fft3d, FftStats
from repro.runtime.thread_rt import ThreadWorld
from repro.trace import bench_payload, tracing, write_bench_json

_N = 16
_RANKS = 8


def _spmd_fft() -> list[FftStats]:
    plan = Fft3d((_N, _N, _N), _RANKS, e_tol=1e-6)
    rng = np.random.default_rng(11)
    x = rng.standard_normal((_N, _N, _N)) + 1j * rng.standard_normal((_N, _N, _N))
    locals_ = plan.scatter(x)

    def kernel(comm):
        stats = FftStats()
        plan.forward_spmd(comm, locals_[comm.rank], stats=stats)
        return stats

    return ThreadWorld(_RANKS).run(kernel)


def test_fft_tracing_disabled(benchmark):
    """Baseline: the instrumented hot paths with no tracer installed."""
    benchmark.pedantic(_spmd_fft, rounds=3, iterations=1)


def test_fft_tracing_enabled(benchmark):
    """Same run under an installed tracer (span + counter recording cost)."""

    def traced():
        with tracing():
            _spmd_fft()

    benchmark.pedantic(traced, rounds=3, iterations=1)


def test_emit_bench_json(benchmark, tmp_path_factory):
    """One traced run, exported through the BENCH_*.json emitter."""
    out_dir = os.environ.get("REPRO_BENCH_DIR") or str(tmp_path_factory.mktemp("bench"))

    def traced_and_emitted() -> str:
        with tracing() as tracer:
            per_rank = _spmd_fft()
        payload = bench_payload(
            tracer,
            "trace_smoke",
            meta={
                "case": "fft",
                "nranks": _RANKS,
                "n": _N,
                "stats_wire_bytes": sum(s.wire_bytes for s in per_rank),
            },
        )
        assert payload["counters"]["wire_bytes"]["total"] == payload["meta"]["stats_wire_bytes"]
        return write_bench_json(os.path.join(out_dir, "BENCH_trace_smoke.json"), payload)

    path = benchmark.pedantic(traced_and_emitted, rounds=1, iterations=1)
    assert os.path.exists(path)
