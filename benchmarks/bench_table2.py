"""Benchmark + regeneration of Table II (accuracy per GPU count).

Real data movement through the virtual runtime.  Default scale keeps
the bench fast (16^3 grid, 3 rank counts); ``REPRO_FULL=1`` runs the
paper's full 12..1536 rank sweep on a 64^3 grid (about a minute).
"""

from __future__ import annotations

from repro.experiments import format_table2, run_table2
from repro.experiments.paper_data import PAPER_TABLE2


def test_table2_accuracy_sweep(benchmark, full_scale):
    if full_scale:
        kwargs = {"n": 64, "gpu_counts": [12, 24, 48, 96, 192, 384, 768, 1536]}
    else:
        kwargs = {"n": 32, "gpu_counts": [12, 24, 48]}
    rows = benchmark.pedantic(lambda: run_table2(**kwargs), rounds=1, iterations=1)
    print("\n=== Table II (regenerated) ===")
    print(format_table2(rows))
    print("\n--- paper values for comparison ---")
    for p, vals in PAPER_TABLE2.items():
        if p in {r.gpus for r in rows}:
            print(
                f"{p:>6d} {vals['FP64']:>10.2e} {vals['FP32']:>10.2e} "
                f"{vals['FP64->FP32']:>11.2e}"
            )
    # the table's invariant at every rank count: FP64 << cast < FP32
    for r in rows:
        assert r.fp64 < 1e-13
        assert r.fp64 < r.cast < r.fp32
