"""Ablation: codec throughput and rate/accuracy on random vs smooth data.

Measures the *real* (Python/NumPy) compression throughput of every
codec with pytest-benchmark — the relative ordering (cast fastest, zfp
~10x slower, zlib slowest) is the same ordering the GPU cost model
assumes — and prints the rate/error table behind the Section IV-A
discussion.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import (
    CastCodec,
    IdentityCodec,
    MantissaTrimCodec,
    ShuffleZlibCodec,
    ZfpLikeCodec,
    evaluate_codec,
)

N = 1 << 18  # 256k doubles = 2 MB messages


def _data(kind: str) -> np.ndarray:
    if kind == "random":
        return np.random.default_rng(0).random(N)
    t = np.linspace(0, 20 * np.pi, N)
    return np.sin(t) + 0.2 * np.cos(5 * t)


CODECS = {
    "identity": IdentityCodec(),
    "cast_fp32": CastCodec("fp32"),
    "cast_fp16s": CastCodec("fp16", scaled=True),
    "trim_m36": MantissaTrimCodec(36),
    "zfp_rate4": ZfpLikeCodec(rate=4.0),
    "zlib1": ShuffleZlibCodec(),
}


@pytest.mark.parametrize("name", list(CODECS))
def test_codec_compress_throughput(benchmark, name):
    codec = CODECS[name]
    data = _data("random")
    msg = benchmark(codec.compress, data)
    mbps = data.nbytes / 1e6
    print(f"\n{name}: {mbps:.1f} MB message -> {msg.nbytes / 1e6:.2f} MB on the wire")


def test_random_vs_smooth_table():
    print("\n=== Section IV-A ablation: codec rate/error by data kind ===")
    for kind in ("random", "smooth"):
        data = _data(kind)
        print(f"--- {kind} data ---")
        for name, codec in CODECS.items():
            rep = evaluate_codec(codec, data)
            print(f"  {name:<12} rate={rep.rate:6.2f}x  rel_l2={rep.rel_l2:9.2e}")
    # the paper's claim: on random data zfp behaves like truncation...
    zfp_rand = evaluate_codec(ZfpLikeCodec(rate=4.0), _data("random"))
    cast_rand = evaluate_codec(CastCodec("fp16", scaled=True), _data("random"))
    assert zfp_rand.rel_l2 > cast_rand.rel_l2 / 10  # no miracle on noise
    # ...but wins handily on spatially-correlated data
    zfp_smooth = evaluate_codec(ZfpLikeCodec(rate=4.0), _data("smooth"))
    cast_smooth = evaluate_codec(CastCodec("fp16", scaled=True), _data("smooth"))
    assert zfp_smooth.rel_l2 < cast_smooth.rel_l2 / 100
