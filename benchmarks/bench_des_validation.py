"""Cross-validation: flow-level simulation vs the closed-form cost model.

The Fig. 3/4 numbers come from closed-form expressions; the flow
simulator re-derives the ring's timing from per-message max-min fair
link sharing.  Agreement within ~20% at the scales the DES can reach is
the evidence that the closed form accounts volume/scheduling/latency
correctly (the congestion factor is deliberately a separate, empirical
layer — fluid models cannot produce it).
"""

from __future__ import annotations

import pytest

from repro.machine import SUMMIT
from repro.netsim import osc_alltoall_cost, simulate_alltoall


@pytest.mark.parametrize("p", [12, 24, 48])
def test_des_vs_closed_form(benchmark, p):
    des = benchmark.pedantic(
        lambda: simulate_alltoall(SUMMIT, p, 80_000, algorithm="ring"), rounds=1, iterations=1
    )
    model = osc_alltoall_cost(SUMMIT, p, 80_000).total_s
    print(f"\np={p}: DES {des * 1e3:.3f} ms vs closed form {model * 1e3:.3f} ms")
    assert des == pytest.approx(model, rel=0.25)


def test_des_schedules_differ(benchmark):
    """The storm and the ring have the same fluid makespan (fairness),
    pinning the classical slowdown on sub-fluid congestion."""

    def both():
        ring = simulate_alltoall(SUMMIT, 24, 80_000, algorithm="ring")
        storm = simulate_alltoall(SUMMIT, 24, 80_000, algorithm="linear")
        return ring, storm

    ring, storm = benchmark.pedantic(both, rounds=1, iterations=1)
    print(f"\nfluid ring {ring * 1e3:.2f} ms vs fluid storm {storm * 1e3:.2f} ms")
    assert storm <= ring * 1.1
