"""Proc-vs-thread wall-clock comparison on a compute-heavy SPMD kernel.

The process runtime exists for exactly one reason: Python threads share
a GIL, so per-rank compute (the FFT/compress phases between exchanges)
serializes on ThreadWorld no matter how many cores the box has.  This
bench runs the same GIL-bound kernel — a long loop of small FFTs, where
interpreter overhead dominates and the GIL is contended — through both
runtimes at 4 ranks and records the speedup to ``BENCH_pr8.json``.

Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_runtime_compare.py [out.json]

or through pytest, where the correctness cross-check always runs and
the speedup floor is asserted only on machines with enough cores for
the comparison to mean anything.
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

from repro.runtime import make_world

NRANKS = 4
REPEATS = 3
ITERS = 8000  # big enough that fork/setup overhead is noise next to compute
SPEEDUP_FLOOR = 1.3
MIN_CORES = 4


def compute_heavy_kernel(comm, iters: int = ITERS) -> float:
    """Small-FFT loop (GIL-bound compute) capped by one real exchange."""
    rng = np.random.default_rng(comm.rank)
    x = rng.standard_normal(256)
    for _ in range(iters):
        y = np.fft.rfft(x)
        x = np.fft.irfft(y * 0.999, n=x.size)
    blocks = [np.full(64, float(x[0]) + d) for d in range(comm.size)]
    got = comm.alltoallv(blocks)
    return float(np.sum([b.sum() for b in got]))


def time_runtime(runtime: str, *, iters: int = ITERS, repeats: int = REPEATS):
    """(best wall-clock seconds, all times, one run's results)."""
    times = []
    results = None
    for _ in range(repeats):
        world = make_world(runtime, NRANKS, timeout=300.0)
        t0 = time.perf_counter()
        results = world.run(compute_heavy_kernel, iters)
        times.append(time.perf_counter() - t0)
    return min(times), times, results


def compare(*, iters: int = ITERS, repeats: int = REPEATS) -> dict:
    thread_best, thread_times, thread_res = time_runtime(
        "thread", iters=iters, repeats=repeats
    )
    proc_best, proc_times, proc_res = time_runtime("proc", iters=iters, repeats=repeats)
    assert np.allclose(thread_res, proc_res), "runtimes disagree on the kernel result"
    return {
        "bench": "runtime-compare",
        "kernel": "small-fft-loop + alltoallv",
        "nranks": NRANKS,
        "iters": iters,
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "runtimes": {
            "thread": {"best_s": thread_best, "times_s": thread_times},
            "proc": {"best_s": proc_best, "times_s": proc_times},
        },
        "speedup_proc_over_thread": thread_best / proc_best,
    }


# -- pytest entry points ---------------------------------------------------------------


def test_runtimes_agree_on_kernel_result():
    """Correctness leg: always runs, even on one core."""
    compare(iters=50, repeats=1)


def test_proc_outruns_threads_on_compute():
    """Perf leg: the whole point of the process runtime, asserted only
    where the hardware can show it (a 1-core runner measures nothing
    but fork overhead)."""
    import pytest

    if (os.cpu_count() or 1) < MIN_CORES:
        pytest.skip(f"needs >= {MIN_CORES} cores to measure parallel speedup")
    payload = compare()
    assert payload["speedup_proc_over_thread"] >= SPEEDUP_FLOOR, (
        f"proc runtime only {payload['speedup_proc_over_thread']:.2f}x over threads "
        f"on {payload['cpu_count']} cores (floor {SPEEDUP_FLOOR}x): {payload}"
    )


def main(argv: list[str]) -> int:
    out_path = argv[1] if len(argv) > 1 else "BENCH_pr8.json"
    payload = compare()
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    speedup = payload["speedup_proc_over_thread"]
    cores = payload["cpu_count"]
    print(
        f"runtime-compare: thread {payload['runtimes']['thread']['best_s']:.3f}s, "
        f"proc {payload['runtimes']['proc']['best_s']:.3f}s "
        f"-> {speedup:.2f}x on {cores} cores ({out_path})"
    )
    if (cores or 1) >= MIN_CORES and speedup < SPEEDUP_FLOOR:
        print(f"FAIL: speedup {speedup:.2f}x below floor {SPEEDUP_FLOOR}x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
