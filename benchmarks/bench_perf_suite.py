"""Benchmark the perf-analysis layer itself + the gated suite cases.

The regression gate (``python -m repro perf compare``) only stays
honest if its own machinery is cheap relative to what it measures.
This bench times (1) each pinned suite case exactly as the gate runs
it, (2) the analysis pass — critical path + overlap + bandwidth — over
a real traced run, and (3) the streaming-histogram recording mode
against the default keep-every-span mode, so a drift in analysis cost
shows up in the benchmark trajectory alongside the workloads.
"""

from __future__ import annotations

import pytest

from repro.perf.baseline import SUITE_CASES
from repro.perf.cli import traced_report_case
from repro.perf.critical_path import critical_path, exchange_paths
from repro.perf.histogram import LogHistogram
from repro.perf.overlap import bandwidth_report, overlap_report


@pytest.mark.parametrize("case", sorted(SUITE_CASES))
def test_suite_case(benchmark, case):
    """One untraced repeat of each gated suite case (what `record` times)."""
    benchmark.pedantic(SUITE_CASES[case], args=(0,), rounds=3, iterations=1)


def test_analysis_pass(benchmark):
    """Critical path + overlap + bandwidth over one traced pipelined exchange."""
    tracer, topo = traced_report_case("alltoall", nranks=4, seed=0)
    events = tracer.span_events()

    def analyse():
        path = critical_path(events)
        rounds = exchange_paths(events)
        overlap = overlap_report(events)
        bw = bandwidth_report(events, topo)
        assert path is not None and rounds and overlap.per_rank and bw
        return path

    benchmark.pedantic(analyse, rounds=5, iterations=1)


def test_histogram_ingest(benchmark, rng):
    """Streaming-histogram ingest rate (the bounded-memory tracer mode)."""
    values = rng.lognormal(mean=10.0, sigma=2.0, size=50_000)

    def ingest():
        hist = LogHistogram()
        hist.extend(values)
        return hist.percentile(99)

    benchmark.pedantic(ingest, rounds=3, iterations=1)
