"""Ablation: the Section V-B compression/communication pipeline.

Sweeps the chunk count and verifies the paper's cost claim — total time
collapses to (first chunk's compression + wire time of the compressed
bytes) once the message is fragmented — and benchmarks the real
fragment production.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compression import CastCodec
from repro.gpudev import CompressionPipeline
from repro.machine import SUMMIT

LINK = 12.5e9  # one-direction injection bandwidth of a Summit node


def _trace(chunks: int, n_values: int = 2_000_000):
    rng = np.random.default_rng(0)
    pipe = CompressionPipeline(
        SUMMIT.gpu, CastCodec("fp32"), link_bytes_per_s=LINK, chunks=chunks
    )
    return pipe.run(rng.random(n_values))


@pytest.mark.parametrize("chunks", [1, 2, 4, 8, 16, 32])
def test_pipeline_chunk_sweep(benchmark, chunks):
    msgs, trace = benchmark.pedantic(lambda: _trace(chunks), rounds=1, iterations=1)
    wire = sum(m.nbytes for m in msgs)
    ideal = wire / LINK
    print(
        f"\nchunks={chunks:>3d}: modelled total {trace.total_s * 1e3:7.3f} ms, "
        f"wire-only {ideal * 1e3:7.3f} ms, fill {trace.first_compress_s * 1e6:8.1f} us"
    )
    # pipelining approaches the wire-time bound as chunks grow
    if chunks >= 8:
        assert trace.total_s < ideal * 1.25


def test_pipeline_beats_serial():
    """Chunked overlap must beat compress-everything-then-send."""
    _, serial = _trace(1)
    _, pipelined = _trace(16)
    assert pipelined.total_s < serial.total_s
