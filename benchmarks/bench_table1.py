"""Benchmark + regeneration of paper Table I (FP formats, GPU peaks)."""

from __future__ import annotations

from repro.experiments import format_table1_experiment, run_table1


def test_table1_rows(benchmark):
    rows = benchmark(run_table1)
    assert len(rows) == 4
    print("\n=== Table I (regenerated) ===")
    print(format_table1_experiment())


def test_table1_matches_paper_values():
    """The computed columns must match the paper's (they are IEEE facts)."""
    by_name = {r.fmt.name: r for r in run_table1()}
    assert abs(by_name["FP32"].fmt.unit_roundoff - 6.0e-8) / 6.0e-8 < 0.01
    assert abs(by_name["FP16"].fmt.largest_normal - 6.6e4) / 6.6e4 < 0.01
    assert by_name["FP16"].peak_v100_tflops == 125.0
