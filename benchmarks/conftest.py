"""Benchmark configuration.

Set ``REPRO_FULL=1`` to run the paper-scale parameterisations (full GPU
sweeps, larger grids); the default keeps every bench under a few
seconds so ``pytest benchmarks/ --benchmark-only`` stays quick.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

FULL = os.environ.get("REPRO_FULL", "0") == "1"


@pytest.fixture(scope="session")
def full_scale() -> bool:
    return FULL


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20220905)
