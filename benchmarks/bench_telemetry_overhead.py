"""Always-on telemetry must cost < 5% of FFT wall-clock.

The flight recorder, the live gauges and the metrics registry are armed
in production with no opt-in — the whole design rests on the
instrumentation being cheap enough to leave on.  This bench times the
same compressed 3-D FFT loop with telemetry enabled (the default) and
with ``recorder.configure(enabled=False)`` (one attribute load + branch
per site, the cheapest "off" we offer), and asserts the enabled run is
within ``REPRO_TELEMETRY_OVERHEAD_PCT`` (default 5.0) percent.  The
estimate compares trimmed means over interleaved, order-alternated
pairs, which cancels the box-load drift and preemption spikes that
dominate shared CI runners.

Run as a script (CI does)::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py [out.json]

or through pytest (``pytest benchmarks/bench_telemetry_overhead.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time

import numpy as np

NRANKS = 4
N = 48  # 48^3 grid: compute-dominated like a real run (the paper's are
#         512^3+), so the constant per-round instrumentation cost is
#         measured against actual work rather than micro-exchange
#         latency — and each timed unit is long enough (~200 ms) that
#         scheduler noise doesn't swamp a single base/instrumented pair
ITERS = 4  # transforms per repeat
REPEATS = 25  # interleaved pairs, trimmed-mean estimate
TRIM = 5  # samples dropped from each end of each series before the mean
OVERHEAD_PCT = float(os.environ.get("REPRO_TELEMETRY_OVERHEAD_PCT", "5.0"))


def _fft_workload() -> float:
    """One timed unit: ITERS compressed forward transforms on a ThreadWorld."""
    from repro.fft import Fft3d
    from repro.runtime.thread_rt import ThreadWorld

    rng = np.random.default_rng(11)
    shape = (N, N, N)
    data = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
        np.complex128
    )
    fft = Fft3d(shape, NRANKS, e_tol=1e-6)

    def kernel(comm):
        local = fft.scatter(data)[comm.rank]
        for _ in range(ITERS):
            out = fft.forward_spmd(comm, local)
        return float(np.abs(out).sum())

    t0 = time.perf_counter()
    ThreadWorld(NRANKS, timeout=120.0).run(kernel)
    return time.perf_counter() - t0


def run_bench() -> dict:
    from repro.telemetry import recorder

    baseline: list[float] = []
    instrumented: list[float] = []
    try:
        # Warm up both modes (plan caches, thread pools, imports), then
        # interleave base/instrumented pairs so load drift on the box
        # hits both series equally instead of biasing one whole batch.
        # Alternating which mode runs first inside a pair cancels the
        # residual bias a monotone drift puts on the second element.
        recorder.configure(enabled=False)
        _fft_workload()
        recorder.configure(enabled=True)
        _fft_workload()
        for rep in range(REPEATS):
            if rep % 2 == 0:
                recorder.configure(enabled=False)
                baseline.append(_fft_workload())
                recorder.configure(enabled=True)
                instrumented.append(_fft_workload())
            else:
                recorder.configure(enabled=True)
                instrumented.append(_fft_workload())
                recorder.configure(enabled=False)
                baseline.append(_fft_workload())
    finally:
        recorder.configure(enabled=True)
        recorder.reset()
    # Scheduler noise on a shared (or single-core) runner is heavy-tailed:
    # a preempted unit reads 2-3x its quiet-window time.  Interleaving
    # spreads those spikes over both series equally; the trimmed mean then
    # drops the spiked samples from each series while still averaging the
    # bulk (lower variance than a median over the same data).
    def _trimmed_mean(series: list[float]) -> float:
        kept = sorted(series)[TRIM : len(series) - TRIM]
        return sum(kept) / len(kept)

    base = _trimmed_mean(baseline)
    inst = _trimmed_mean(instrumented)
    overhead_pct = (inst - base) / base * 100.0
    pair_pct = [
        (i - b) / b * 100.0 for b, i in zip(baseline, instrumented)
    ]
    return {
        "bench": "telemetry-overhead",
        "nranks": NRANKS,
        "n": N,
        "iters": ITERS,
        "repeats": REPEATS,
        "baseline_s": baseline,
        "instrumented_s": instrumented,
        "trimmed_baseline_s": base,
        "trimmed_instrumented_s": inst,
        "pair_overhead_pct": pair_pct,
        "overhead_pct": overhead_pct,
        "bound_pct": OVERHEAD_PCT,
        "within_bound": overhead_pct < OVERHEAD_PCT,
    }


def test_telemetry_overhead_under_bound():
    payload = run_bench()
    print(
        f"\ntelemetry overhead: {payload['overhead_pct']:+.2f}% "
        f"(bound {payload['bound_pct']:.1f}%, "
        f"baseline {payload['trimmed_baseline_s']:.3f}s, "
        f"instrumented {payload['trimmed_instrumented_s']:.3f}s)"
    )
    assert payload["within_bound"], (
        f"always-on telemetry costs {payload['overhead_pct']:.2f}% "
        f"(> {payload['bound_pct']:.1f}% bound)"
    )


def main(argv: list[str]) -> int:
    payload = run_bench()
    out = argv[1] if len(argv) > 1 else "BENCH_telemetry_overhead.json"
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"\nwrote {out}")
    if not payload["within_bound"]:
        print(
            f"FAIL: overhead {payload['overhead_pct']:.2f}% exceeds "
            f"{payload['bound_pct']:.1f}% bound"
        )
        return 1
    print(f"PASS: overhead {payload['overhead_pct']:+.2f}% < {payload['bound_pct']:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
